package camchord

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/topology"
)

// paperRing builds the 8-node example network of Figure 2: identifier space
// [0..31], nodes at x, x+4, x+8, x+13, x+18, x+21, x+26, x+29 (x = 0), all
// with capacity 3.
func paperRing(t *testing.T) *Network {
	t.Helper()
	r, err := topology.New(ring.MustSpace(5), []ring.ID{0, 4, 8, 13, 18, 21, 26, 29})
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{3, 3, 3, 3, 3, 3, 3, 3}
	n, err := New(r, caps)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randomNetwork(t testing.TB, bits uint, nodes int, capLo, capHi int, seed int64) *Network {
	t.Helper()
	s := ring.MustSpace(bits)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[ring.ID]bool, nodes)
	ids := make([]ring.ID, 0, nodes)
	for len(ids) < nodes {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, err := topology.New(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, nodes)
	for i := range caps {
		caps[i] = capLo + rng.Intn(capHi-capLo+1)
	}
	n, err := New(r, caps)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(5), []ring.ID{1, 2})
	if _, err := New(nil, nil); err == nil {
		t.Error("nil ring should fail")
	}
	if _, err := New(r, []int{3}); err == nil {
		t.Error("capacity count mismatch should fail")
	}
	if _, err := New(r, []int{3, 1}); err == nil {
		t.Error("capacity below minimum should fail")
	}
}

// TestNeighborIDsPaperExample checks Section 3.1's example: N = [0..31],
// c_x = 3 gives neighbor identifiers x+1, x+2 (level 0), x+3, x+6 (level 1),
// x+9, x+18 (level 2), x+27 (level 3; x+2*27 wraps past N and is excluded).
func TestNeighborIDsPaperExample(t *testing.T) {
	n := paperRing(t)
	pos, ok := n.Ring().PosOf(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	got := n.NeighborIDs(pos)
	want := []ring.ID{1, 2, 3, 6, 9, 18, 27}
	if len(got) != len(want) {
		t.Fatalf("NeighborIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeighborIDs = %v, want %v", got, want)
		}
	}
}

// TestNeighborResolutionPaperExample checks the resolved neighbor nodes of
// Figure 2: x̂0,1 = x̂0,2 = x̂1,1 = x+4, x̂1,2 = x+8, x̂2,1 = x+13,
// x̂2,2 = x+18, x̂3,1 = x+29.
func TestNeighborResolutionPaperExample(t *testing.T) {
	n := paperRing(t)
	r := n.Ring()
	tests := []struct {
		id   ring.ID
		want ring.ID
	}{
		{1, 4}, {2, 4}, {3, 4}, {6, 8}, {9, 13}, {18, 18}, {27, 29},
	}
	for _, tt := range tests {
		if got := r.IDAt(r.Responsible(tt.id)); got != tt.want {
			t.Errorf("responsible(%d) = %d, want %d", tt.id, got, tt.want)
		}
	}

	pos, _ := r.PosOf(0)
	nodes := n.NeighborNodes(pos)
	wantNodes := map[ring.ID]bool{4: true, 8: true, 13: true, 18: true, 29: true}
	if len(nodes) != len(wantNodes) {
		t.Fatalf("NeighborNodes resolved to %d distinct nodes, want %d", len(nodes), len(wantNodes))
	}
	for _, p := range nodes {
		if !wantNodes[r.IDAt(p)] {
			t.Errorf("unexpected neighbor node %d", r.IDAt(p))
		}
	}
}

// TestLookupPaperExample follows Section 3.2: from x = 0, LOOKUP(25) routes
// via node 18 and returns node 26.
func TestLookupPaperExample(t *testing.T) {
	n := paperRing(t)
	r := n.Ring()
	from, _ := r.PosOf(0)
	resp, path := n.Lookup(from, 25)
	if got := r.IDAt(resp); got != 26 {
		t.Fatalf("Lookup(25) returned node %d, want 26", got)
	}
	if len(path) != 2 || r.IDAt(path[0]) != 0 || r.IDAt(path[1]) != 18 {
		ids := make([]ring.ID, len(path))
		for i, p := range path {
			ids[i] = r.IDAt(p)
		}
		t.Fatalf("Lookup path = %v, want [0 18]", ids)
	}
}

func TestLookupSelfAndSuccessor(t *testing.T) {
	n := paperRing(t)
	r := n.Ring()
	from, _ := r.PosOf(0)
	// Identifier 0 is node 0 itself.
	if resp, _ := n.Lookup(from, 0); r.IDAt(resp) != 0 {
		t.Error("Lookup(own id) should return self")
	}
	// Identifiers (0,4] belong to the successor.
	if resp, _ := n.Lookup(from, 3); r.IDAt(resp) != 4 {
		t.Error("Lookup(3) should return successor 4")
	}
	if resp, _ := n.Lookup(from, 4); r.IDAt(resp) != 4 {
		t.Error("Lookup(4) should return node 4")
	}
}

func TestLookupMatchesResponsibleEverywhere(t *testing.T) {
	n := randomNetwork(t, 12, 150, 2, 12, 1)
	r := n.Ring()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		from := rng.Intn(r.Len())
		k := r.Space().Reduce(rng.Uint64())
		want := r.Responsible(k)
		got, path := n.Lookup(from, k)
		if got != want {
			t.Fatalf("Lookup(from=%d, k=%d) = node %d, want %d", from, k, r.IDAt(got), r.IDAt(want))
		}
		if len(path) > r.Len() {
			t.Fatalf("path length %d exceeds node count", len(path))
		}
	}
}

// TestLookupSparseRingNoLoop regression-tests the greedy-overshoot case the
// paper's pseudo-code does not handle: very sparse rings where the greedy
// neighbor wraps past the target.
func TestLookupSparseRingNoLoop(t *testing.T) {
	r, err := topology.New(ring.MustSpace(5), []ring.ID{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(r, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	from, _ := r.PosOf(0)
	resp, _ := n.Lookup(from, 20) // responsible(20) wraps to node 0
	if got := r.IDAt(resp); got != 0 {
		t.Fatalf("Lookup(20) = node %d, want 0", got)
	}
}

// TestBuildTreePaperExample reproduces Figure 3 exactly: the implicit tree
// rooted at x has children x+29 (segment (x+29, x+31]), x+18 (segment
// (x+18, x+26]) and x+4 (segment (x+4, x+17]); node x+18 forwards to x+21
// and x+26; node x+4 forwards to x+8 and x+13.
func TestBuildTreePaperExample(t *testing.T) {
	n := paperRing(t)
	r := n.Ring()
	src, _ := r.PosOf(0)
	tree, err := n.BuildTree(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.VerifyComplete(); err != nil {
		t.Fatal(err)
	}

	childIDs := func(id ring.ID) map[ring.ID]bool {
		pos, _ := r.PosOf(id)
		out := map[ring.ID]bool{}
		for _, c := range tree.Children(pos) {
			out[r.IDAt(c)] = true
		}
		return out
	}

	wantRoot := map[ring.ID]bool{29: true, 18: true, 4: true}
	if got := childIDs(0); len(got) != 3 || !got[29] || !got[18] || !got[4] {
		t.Fatalf("children of x = %v, want %v", got, wantRoot)
	}
	if got := childIDs(18); len(got) != 2 || !got[21] || !got[26] {
		t.Fatalf("children of x+18 = %v, want {21,26}", got)
	}
	if got := childIDs(4); len(got) != 2 || !got[8] || !got[13] {
		t.Fatalf("children of x+4 = %v, want {8,13}", got)
	}
	if tree.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", tree.MaxDepth())
	}
}

func TestBuildTreeExactlyOnceRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := randomNetwork(t, 14, 400, 2, 10, seed)
		src := int(seed) % n.Ring().Len()
		tree, err := n.BuildTree(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBuildTreeDegreeBound(t *testing.T) {
	n := randomNetwork(t, 14, 600, 2, 15, 9)
	tree, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < n.Ring().Len(); pos++ {
		if d := tree.Degree(pos); d > n.Capacity(pos) {
			t.Fatalf("node %d has %d children, capacity %d", pos, d, n.Capacity(pos))
		}
	}
}

// Internal nodes away from the tree bottom should use their full capacity
// (Section 3.4: "the number of children for an internal node is always equal
// to the node's capacity as long as the node is not at the bottom levels").
func TestBuildTreeCapacitySaturation(t *testing.T) {
	n := randomNetwork(t, 17, 3000, 4, 4, 3)
	tree, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes within the top half of the tree must be saturated.
	cut := tree.MaxDepth() / 2
	saturated, shallow := 0, 0
	for pos := 0; pos < n.Ring().Len(); pos++ {
		if tree.Depth(pos) < cut && tree.Degree(pos) > 0 {
			shallow++
			if tree.Degree(pos) == n.Capacity(pos) {
				saturated++
			}
		}
	}
	if shallow == 0 {
		t.Fatal("no shallow internal nodes found")
	}
	if frac := float64(saturated) / float64(shallow); frac < 0.9 {
		t.Errorf("only %.0f%% of shallow internal nodes saturated their capacity", frac*100)
	}
}

// Path lengths should scale like log n / log c (Theorem 4).
func TestBuildTreePathLengthScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	const nodes = 4000
	for _, c := range []int{4, 8, 16} {
		n := randomNetwork(t, 19, nodes, c, c, 11)
		tree, err := n.BuildTree(0)
		if err != nil {
			t.Fatal(err)
		}
		bound := 1.5 * math.Log(nodes) / math.Log(float64(c))
		if got := tree.AvgPathLength(); got > bound {
			t.Errorf("c=%d: avg path length %.2f exceeds 1.5·ln(n)/ln(c) = %.2f", c, got, bound)
		}
	}
}

func TestBuildTreeSingleNode(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(5), []ring.ID{7})
	n, err := New(r, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.VerifyComplete(); err != nil {
		t.Fatal(err)
	}
	if tree.Reached() != 1 {
		t.Fatal("single-node group should reach only itself")
	}
}

func TestBuildTreeTwoNodes(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(5), []ring.ID{3, 20})
	n, err := New(r, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 2; src++ {
		tree, err := n.BuildTree(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
	}
}

func TestBuildTreeEverySource(t *testing.T) {
	n := randomNetwork(t, 12, 120, 2, 8, 4)
	for src := 0; src < n.Ring().Len(); src++ {
		tree, err := n.BuildTree(src)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
	}
}

func TestCapacityAccessor(t *testing.T) {
	n := paperRing(t)
	if n.Capacity(0) != 3 {
		t.Errorf("Capacity(0) = %d", n.Capacity(0))
	}
}

// TestAppendNeighborNodesMatchesNeighborIDs cross-checks the on-the-fly
// enumeration in AppendNeighborNodes against the reference NeighborIDs +
// Responsible resolution, including first-seen order.
func TestAppendNeighborNodesMatchesNeighborIDs(t *testing.T) {
	n := randomNetwork(t, 14, 200, 2, 9, 11)
	var buf []int
	for pos := 0; pos < n.Ring().Len(); pos++ {
		var want []int
		seen := make(map[int]bool)
		for _, id := range n.NeighborIDs(pos) {
			p := n.Ring().Responsible(id)
			if p == pos || seen[p] {
				continue
			}
			seen[p] = true
			want = append(want, p)
		}
		buf = n.AppendNeighborNodes(buf[:0], pos)
		if !slices.Equal(buf, want) {
			t.Fatalf("pos %d: AppendNeighborNodes = %v, want %v", pos, buf, want)
		}
		if got := n.NeighborNodes(pos); !slices.Equal(got, want) {
			t.Fatalf("pos %d: NeighborNodes = %v, want %v", pos, got, want)
		}
	}
}

// TestAppendNeighborNodesAllocFree gates the perf fix: with a reused dst
// buffer and a warmed scratch pool, neighbor resolution must not allocate
// (the former implementation built a map[int]bool per call).
func TestAppendNeighborNodesAllocFree(t *testing.T) {
	n := randomNetwork(t, 14, 200, 2, 9, 12)
	buf := make([]int, 0, 64)
	pos := 0
	n.AppendNeighborNodes(buf, pos) // warm the scratch pool
	avg := testing.AllocsPerRun(100, func() {
		buf = n.AppendNeighborNodes(buf[:0], pos)
		pos = (pos + 1) % n.Ring().Len()
	})
	if avg > 0 {
		t.Fatalf("AppendNeighborNodes allocates %.1f times per call, want 0", avg)
	}
}

// BenchmarkNeighborNodes measures neighbor resolution as the experiment
// engine's lookup sweeps drive it: every position in turn, one reused
// buffer.
func BenchmarkNeighborNodes(b *testing.B) {
	n := randomNetwork(b, 16, 1000, 2, 9, 13)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = n.AppendNeighborNodes(buf[:0], i%n.Ring().Len())
	}
}
