package camchord

import (
	"math"

	"camcast/internal/multicast"
	"camcast/internal/ring"
)

// This file implements Proximity Neighbor Selection (PNS), the Section 5.2
// extension: "A node x can choose any node whose identifier belongs to the
// segment [x + j·c^i, x + (j+1)·c^i) as the neighbor x_{i,j}. Given this
// freedom, some heuristics (e.g., least delay first) may be used to choose
// neighbors to promote geographic clustering."
//
// The multicast routine needs the modification the paper calls
// "superficial": when the chosen child z' is not the first node of its
// identifier segment, the members between the segment start and z' would be
// skipped by the usual region arithmetic. They are covered by a short
// predecessor walk from z' (bounded by the candidate-sampling window), so
// delivery remains exactly-once.

// DelayFunc returns the one-way delay between two ring positions.
type DelayFunc func(a, b int) float64

// DefaultProximitySample is the default number of candidate nodes examined
// per neighbor slot. It bounds both the selection work and the length of
// the backward predecessor walk.
const DefaultProximitySample = 8

// BuildTreeProximity builds the implicit multicast tree rooted at src with
// least-delay-first child selection: for every child slot it examines up to
// sample candidate nodes clockwise from the slot's identifier (staying
// inside both the slot segment and the remaining multicast region) and
// picks the one with the smallest delay from the forwarding node.
//
// It returns the tree and the accumulated source-to-member delay of every
// node (delay[src] == 0). sample <= 1 degenerates to the arithmetic
// selection of BuildTree, modulo the per-node delay accounting.
func (n *Network) BuildTreeProximity(src int, delay DelayFunc, sample int) (*multicast.Tree, []float64, error) {
	if sample < 1 {
		sample = DefaultProximitySample
	}
	tree, err := multicast.NewTree(n.ring.Len(), src)
	if err != nil {
		return nil, nil, err
	}
	delays := make([]float64, n.ring.Len())
	s := n.ring.Space()

	type task struct {
		node int
		k    ring.ID
	}
	queue := make([]task, 0, n.ring.Len())
	queue = append(queue, task{node: src, k: s.Sub(n.ring.IDAt(src), 1)})

	for head := 0; head < len(queue); head++ {
		t := queue[head]
		x := t.node
		xid := n.ring.IDAt(x)
		c := uint64(n.caps[x])
		k := t.k
		if s.Dist(xid, k) == 0 {
			continue
		}

		// send picks the least-delay candidate for the slot starting at
		// identifier y (slot width bounds the candidate window), delivers
		// to it, covers the skipped members behind it with a predecessor
		// walk, and shrinks the remaining region to (x, y-1].
		send := func(y ring.ID, width uint64) error {
			if s.Dist(xid, k) == 0 || !s.InOC(y, xid, k) {
				return nil
			}
			first := n.ring.Responsible(y)
			if first == x || !s.InOC(n.ring.IDAt(first), xid, k) {
				k = s.Sub(y, 1)
				return nil
			}
			// Candidate window: up to sample nodes clockwise from y that
			// stay inside the slot [y, y+width) and the region (x, k].
			segEnd := s.Add(y, width-1)
			if s.Dist(xid, segEnd) > s.Dist(xid, k) {
				segEnd = k
			}
			best := first
			bestDelay := delay(x, first)
			p := first
			for i := 1; i < sample; i++ {
				p = n.ring.Successor(p)
				if p == x || !s.InOC(n.ring.IDAt(p), y, segEnd) {
					break
				}
				if d := delay(x, p); d < bestDelay {
					best, bestDelay = p, d
				}
			}

			if err := tree.Deliver(x, best); err != nil {
				return err
			}
			delays[best] = delays[x] + bestDelay
			queue = append(queue, task{node: best, k: k})

			// Backward walk: members in (y-1, best) were skipped by the
			// proximate choice; best forwards to them along predecessors.
			parent := best
			for w := n.ring.Predecessor(best); w != x && s.InOC(n.ring.IDAt(w), s.Sub(y, 1), n.ring.IDAt(best)); w = n.ring.Predecessor(w) {
				if err := tree.Deliver(parent, w); err != nil {
					return err
				}
				delays[w] = delays[parent] + delay(parent, w)
				parent = w
			}

			k = s.Sub(y, 1)
			return nil
		}

		level, seq, pow := s.LevelSeq(xid, k, c)
		for m := seq; m >= 1; m-- {
			if err := send(s.Add(xid, m*pow), pow); err != nil {
				return nil, nil, err
			}
		}
		if level >= 1 {
			prevPow := pow / c
			l := float64(c)
			step := float64(c) / float64(c-seq)
			for m := int64(c) - int64(seq) - 1; m >= 1; m-- {
				l -= step
				j := uint64(math.Ceil(l))
				if j < 1 {
					j = 1
				}
				if err := send(s.Add(xid, j*prevPow), prevPow); err != nil {
					return nil, nil, err
				}
			}
		}
		// The successor slot has width 1: no proximity freedom there.
		if err := send(s.Add(xid, 1), 1); err != nil {
			return nil, nil, err
		}
	}
	return tree, delays, nil
}

// AvgDelay returns the mean source-to-member delay over reached non-root
// nodes of a delays slice produced by BuildTreeProximity.
func AvgDelay(tree *multicast.Tree, delays []float64) float64 {
	var sum float64
	var count int
	for pos := 0; pos < tree.Len(); pos++ {
		if pos == tree.Root() || !tree.Received(pos) {
			continue
		}
		sum += delays[pos]
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
