// Package camchord implements CAM-Chord (Section 3 of the paper): the
// capacity-aware generalization of Chord in which a node x of capacity c_x
// keeps neighbors responsible for the identifiers
//
//	x_{i,j} = (x + j * c_x^i) mod N,  j ∈ [1 .. c_x-1],  i ∈ [0 .. ⌈log N / log c_x⌉ - 1],
//
// looks up identifiers greedily through those neighbors (Section 3.2), and
// multicasts by recursively splitting the identifier segment (x, k] across
// up to c_x children as evenly as possible (Section 3.4). The multicast tree
// is implicit: no tree state is kept anywhere; the tree emerges from the
// collective execution of the Multicast routine.
//
// This package is the simulator-mode implementation: it resolves "the node
// responsible for identifier y" against a static topology.Ring snapshot. The
// dynamic runtime in internal/runtime reuses the same neighbor and segment
// arithmetic through the exported helpers.
package camchord

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"camcast/internal/multicast"
	"camcast/internal/ring"
	"camcast/internal/topology"
)

// MinCapacity is the smallest capacity CAM-Chord supports: the level/
// sequence arithmetic (equations 1-2) requires a branching base of at
// least 2.
const MinCapacity = 2

// Spacing selects how MULTICAST picks its level-(i-1) children (Lines
// 10-14 of the routine).
type Spacing int

// Spacing modes.
const (
	// SpacingEven spreads the remaining children evenly over the lower
	// level, the paper's design for balanced subtrees.
	SpacingEven Spacing = iota + 1
	// SpacingContiguous naively takes the highest consecutive sequence
	// numbers; subtree sizes become badly skewed. Kept as the ablation
	// baseline for the "even separation" design choice.
	SpacingContiguous
)

// Network is a CAM-Chord overlay over a static membership snapshot.
type Network struct {
	ring    *topology.Ring
	caps    []int // capacity per ring position
	spacing Spacing
}

// New builds a CAM-Chord network over the given ring. caps[i] is the
// capacity of the node at ring position i and must be >= MinCapacity.
func New(r *topology.Ring, caps []int) (*Network, error) {
	return NewWithSpacing(r, caps, SpacingEven)
}

// NewWithSpacing builds a CAM-Chord network with an explicit child-spacing
// mode (see Spacing).
func NewWithSpacing(r *topology.Ring, caps []int, spacing Spacing) (*Network, error) {
	if r == nil {
		return nil, fmt.Errorf("camchord: nil ring")
	}
	if spacing != SpacingEven && spacing != SpacingContiguous {
		return nil, fmt.Errorf("camchord: unknown spacing mode %d", spacing)
	}
	if len(caps) != r.Len() {
		return nil, fmt.Errorf("camchord: %d capacities for %d nodes", len(caps), r.Len())
	}
	owned := make([]int, len(caps))
	copy(owned, caps)
	for i, c := range owned {
		if c < MinCapacity {
			return nil, fmt.Errorf("camchord: node %d capacity %d below minimum %d", i, c, MinCapacity)
		}
	}
	return &Network{ring: r, caps: owned, spacing: spacing}, nil
}

// Ring returns the underlying membership snapshot.
func (n *Network) Ring() *topology.Ring { return n.ring }

// Capacity returns the capacity of the node at ring position pos.
func (n *Network) Capacity(pos int) int { return n.caps[pos] }

// NeighborIDs enumerates the neighbor identifiers x_{i,j} of the node at
// ring position pos, in ascending (i, j) order. This is the full identifier
// list of Section 3.1; several identifiers may resolve to the same physical
// node, exactly as in Chord.
func (n *Network) NeighborIDs(pos int) []ring.ID {
	s := n.ring.Space()
	x := n.ring.IDAt(pos)
	c := uint64(n.caps[pos])
	out := make([]ring.ID, 0, 4*int(c))
	for pow := uint64(1); pow < s.Size(); pow *= c {
		for j := uint64(1); j <= c-1; j++ {
			d := j * pow
			if d >= s.Size() {
				break
			}
			out = append(out, s.Add(x, d))
		}
		if pow > s.Size()/c { // next multiply would overflow past the space
			break
		}
	}
	return out
}

// neighborScratch recycles the sorted dedup slice across NeighborNodes
// builds, including concurrent ones from multiple experiment workers. A
// sorted slice beats the former per-call map[int]bool here: neighbor sets
// are small (≲ 4·c entries), so binary search plus insertion-shift stays
// cache-resident and the only allocations are the scratch's one-time growth.
var neighborScratch = sync.Pool{New: func() any { return &neighborSet{} }}

type neighborSet struct{ seen []int }

// NeighborNodes resolves NeighborIDs to distinct ring positions (excluding
// pos itself). This is the actual routing-table contents a live node would
// maintain.
func (n *Network) NeighborNodes(pos int) []int {
	return n.AppendNeighborNodes(make([]int, 0, 4*n.caps[pos]), pos)
}

// AppendNeighborNodes appends the node's distinct neighbor positions
// (excluding pos itself) to dst in first-seen order and returns the
// extended slice, resolving the neighbor identifiers on the fly so a
// lookup sweep can reuse one buffer across the whole run.
func (n *Network) AppendNeighborNodes(dst []int, pos int) []int {
	s := n.ring.Space()
	x := n.ring.IDAt(pos)
	c := uint64(n.caps[pos])
	sc := neighborScratch.Get().(*neighborSet)
	seen := sc.seen[:0]
	for pow := uint64(1); pow < s.Size(); pow *= c {
		for j := uint64(1); j <= c-1; j++ {
			d := j * pow
			if d >= s.Size() {
				break
			}
			p := n.ring.Responsible(s.Add(x, d))
			if p == pos {
				continue
			}
			if i, ok := slices.BinarySearch(seen, p); !ok {
				seen = slices.Insert(seen, i, p)
				dst = append(dst, p)
			}
		}
		if pow > s.Size()/c { // next multiply would overflow past the space
			break
		}
	}
	sc.seen = seen
	neighborScratch.Put(sc)
	return dst
}

// Lookup resolves the node responsible for identifier k starting from the
// node at position from, following the LOOKUP routine of Section 3.2. It
// returns the position of the responsible node and the forwarding path
// (inclusive of the starting node, exclusive of the returned node unless the
// start is itself responsible).
//
// Unlike the paper's pseudo-code, which assumes a ring dense enough that the
// greedy neighbor x̂_{i,j} always lies inside (x, k], this implementation
// also handles the sparse-ring case where resolution wraps all the way back
// to the querying node.
func (n *Network) Lookup(from int, k ring.ID) (resp int, path []int) {
	s := n.ring.Space()
	x := from
	path = append(path, x)
	for {
		xid := n.ring.IDAt(x)
		if xid == k {
			return x, path
		}
		succ := n.ring.Successor(x)
		if s.InOC(k, xid, n.ring.IDAt(succ)) {
			return succ, path
		}

		c := uint64(n.caps[x])
		_, seq, pow := s.LevelSeq(xid, k, c)
		// The greedy neighbor x̂_{i,j}: x_{i,j} is the neighbor identifier
		// counter-clockwise closest to k (equations 1-2).
		y := s.Add(xid, seq*pow)
		z := n.ring.Responsible(y)
		if z == x {
			// Sparse ring: no member in [y, x), so no member in [y, k]
			// either — x itself is responsible for k. (The paper's
			// pseudo-code assumes a dense ring and misses this case.)
			return x, path
		}
		if s.InOC(k, xid, n.ring.IDAt(z)) {
			// k ∈ (x, x̂_{i,j}]: z is responsible for k (Lines 6-7).
			return z, path
		}
		// Otherwise x̂_{i,j} precedes k: forward greedily (Line 9).
		x = z
		path = append(path, x)
	}
}

// task is one pending invocation x.MULTICAST(msg, k): "node must deliver to
// every node in (node, k]".
type task struct {
	node int
	k    ring.ID
}

// queuePool recycles the per-build work queue so repeated BuildTreeInto
// calls (the experiment engine's hot loop) do not re-make it per source.
// Safe under concurrent builds from multiple goroutines.
var queuePool = sync.Pool{New: func() any { q := make([]task, 0, 1024); return &q }}

// BuildTree runs the MULTICAST routine of Section 3.4 from the source at
// ring position src and returns the resulting implicit multicast tree.
func (n *Network) BuildTree(src int) (*multicast.Tree, error) {
	tree, err := multicast.NewTree(n.ring.Len(), src)
	if err != nil {
		return nil, err
	}
	if err := n.buildInto(tree, src); err != nil {
		return nil, err
	}
	return tree, nil
}

// BuildTreeInto rebuilds the implicit multicast tree from src into tree,
// which must span exactly Ring().Len() nodes. The tree is Reset first, so a
// caller can reuse one allocation across many sources; see Tree.Reset.
func (n *Network) BuildTreeInto(tree *multicast.Tree, src int) error {
	if tree == nil {
		return fmt.Errorf("camchord: nil tree")
	}
	if tree.Len() != n.ring.Len() {
		return fmt.Errorf("camchord: tree spans %d nodes, ring has %d", tree.Len(), n.ring.Len())
	}
	if err := tree.Reset(src); err != nil {
		return err
	}
	return n.buildInto(tree, src)
}

// buildInto simulates the collective recursion with an explicit work queue;
// each queue entry is one invocation x.MULTICAST(msg, k). tree must already
// be rooted at src.
func (n *Network) buildInto(tree *multicast.Tree, src int) error {
	s := n.ring.Space()

	qp := queuePool.Get().(*[]task)
	queue := (*qp)[:0]
	defer func() { *qp = queue[:0]; queuePool.Put(qp) }()
	// The source initiates delivery to (x, x-1], i.e. the whole ring but x.
	queue = append(queue, task{node: src, k: s.Sub(n.ring.IDAt(src), 1)})

	for head := 0; head < len(queue); head++ {
		t := queue[head]
		x := t.node
		xid := n.ring.IDAt(x)
		c := uint64(n.caps[x])
		k := t.k
		if s.Dist(xid, k) == 0 {
			continue // empty segment: nothing left to cover
		}

		// send forwards msg to the node responsible for identifier y,
		// assigning it the remaining segment, then shrinks the segment to
		// (x, y-1]. It skips identifiers whose responsible node lies outside
		// the remaining segment (no member nodes are there to cover).
		send := func(y ring.ID) error {
			if s.Dist(xid, k) == 0 || !s.InOC(y, xid, k) {
				return nil
			}
			z := n.ring.Responsible(y)
			if z != x && s.InOC(n.ring.IDAt(z), xid, k) {
				if err := tree.Deliver(x, z); err != nil {
					return err
				}
				queue = append(queue, task{node: z, k: k})
			}
			k = s.Sub(y, 1)
			return nil
		}

		level, seq, pow := s.LevelSeq(xid, k, c)

		// Lines 6-9: level-i neighbors preceding k, highest first.
		for m := seq; m >= 1; m-- {
			if err := send(s.Add(xid, m*pow)); err != nil {
				return err
			}
		}

		// Lines 10-14: fill the remaining capacity with (c - seq - 1)
		// level-(i-1) neighbors, evenly spaced over [1, c). The paper's
		// pseudo-code writes x̂_{i-1,⌊l⌋}, but its own worked example
		// (x̂_{2,2} for c=3, j=1, where l = 3 - 3/2 = 1.5) is consistent
		// only with rounding l up, so we use the ceiling.
		if level >= 1 {
			prevPow := pow / c
			switch n.spacing {
			case SpacingEven:
				l := float64(c)
				step := float64(c) / float64(c-seq)
				for m := int64(c) - int64(seq) - 1; m >= 1; m-- {
					l -= step
					j := uint64(math.Ceil(l))
					if j < 1 {
						j = 1
					}
					if err := send(s.Add(xid, j*prevPow)); err != nil {
						return err
					}
				}
			case SpacingContiguous:
				// Ablation baseline: take the (c-seq-1) highest sequence
				// numbers back to back, clustering children near the top of
				// the remaining segment.
				for j := c - 1; j > seq && j >= 1; j-- {
					if err := send(s.Add(xid, j*prevPow)); err != nil {
						return err
					}
				}
			}
		}

		// Line 15: the successor x̂_{0,1}.
		if err := send(s.Add(xid, 1)); err != nil {
			return err
		}
	}
	return nil
}
