package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	tests := []struct {
		name    string
		bits    uint
		wantErr bool
	}{
		{"zero bits", 0, true},
		{"one bit", 1, false},
		{"paper default 19", 19, false},
		{"max 63", 63, false},
		{"too wide 64", 64, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSpace(tt.bits)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewSpace(%d) error = %v, wantErr %v", tt.bits, err, tt.wantErr)
			}
		})
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpace(0) did not panic")
		}
	}()
	MustSpace(0)
}

func TestSpaceSizeMask(t *testing.T) {
	s := MustSpace(5)
	if got := s.Size(); got != 32 {
		t.Errorf("Size() = %d, want 32", got)
	}
	if got := s.Mask(); got != 31 {
		t.Errorf("Mask() = %d, want 31", got)
	}
	if got := s.Bits(); got != 5 {
		t.Errorf("Bits() = %d, want 5", got)
	}
	if got := s.Half(); got != 16 {
		t.Errorf("Half() = %d, want 16", got)
	}
}

func TestAddSubWraparound(t *testing.T) {
	s := MustSpace(5)
	tests := []struct {
		x   ID
		d   uint64
		add ID
		sub ID
	}{
		{0, 1, 1, 31},
		{31, 1, 0, 30},
		{16, 16, 0, 0},
		{3, 35, 6, 0}, // d > N wraps
	}
	for _, tt := range tests {
		if got := s.Add(tt.x, tt.d); got != tt.add {
			t.Errorf("Add(%d,%d) = %d, want %d", tt.x, tt.d, got, tt.add)
		}
		if got := s.Sub(tt.x, tt.d); got != tt.sub {
			t.Errorf("Sub(%d,%d) = %d, want %d", tt.x, tt.d, got, tt.sub)
		}
	}
}

func TestDist(t *testing.T) {
	s := MustSpace(5)
	tests := []struct {
		x, y ID
		want uint64
	}{
		{0, 0, 0},
		{0, 31, 31},
		{31, 0, 1},
		{30, 2, 4},
		{2, 30, 28},
	}
	for _, tt := range tests {
		if got := s.Dist(tt.x, tt.y); got != tt.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestAbsDist(t *testing.T) {
	s := MustSpace(5)
	tests := []struct {
		x, y ID
		want uint64
	}{
		{0, 0, 0},
		{0, 16, 16},
		{0, 17, 15},
		{31, 1, 2},
		{1, 31, 2},
	}
	for _, tt := range tests {
		if got := s.AbsDist(tt.x, tt.y); got != tt.want {
			t.Errorf("AbsDist(%d,%d) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestAbsDistSymmetric(t *testing.T) {
	s := MustSpace(19)
	f := func(x, y uint64) bool {
		a, b := s.Reduce(x), s.Reduce(y)
		return s.AbsDist(a, b) == s.AbsDist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSumsToN(t *testing.T) {
	s := MustSpace(19)
	f := func(x, y uint64) bool {
		a, b := s.Reduce(x), s.Reduce(y)
		if a == b {
			return s.Dist(a, b) == 0
		}
		return s.Dist(a, b)+s.Dist(b, a) == s.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInOC(t *testing.T) {
	s := MustSpace(5)
	tests := []struct {
		k, x, y ID
		want    bool
	}{
		{5, 0, 10, true},
		{10, 0, 10, true}, // closed at y
		{0, 0, 10, false}, // open at x
		{11, 0, 10, false},
		{1, 30, 5, true}, // wrapping segment
		{31, 30, 5, true},
		{30, 30, 5, false},
		{6, 30, 5, false},
		{3, 7, 7, false}, // (x, x] is empty
		{7, 7, 7, false},
	}
	for _, tt := range tests {
		if got := s.InOC(tt.k, tt.x, tt.y); got != tt.want {
			t.Errorf("InOC(%d in (%d,%d]) = %v, want %v", tt.k, tt.x, tt.y, got, tt.want)
		}
	}
}

func TestInOOAndInCO(t *testing.T) {
	s := MustSpace(5)
	if s.InOO(10, 0, 10) {
		t.Error("InOO: y should be excluded")
	}
	if !s.InOO(9, 0, 10) {
		t.Error("InOO: interior point should be included")
	}
	if !s.InCO(0, 0, 10) {
		t.Error("InCO: x should be included")
	}
	if s.InCO(10, 0, 10) {
		t.Error("InCO: y should be excluded")
	}
}

// Every identifier belongs to exactly one of (x,y], (y,x] for x != y.
func TestSegmentsPartitionRing(t *testing.T) {
	s := MustSpace(19)
	f := func(k, x, y uint64) bool {
		kk, xx, yy := s.Reduce(k), s.Reduce(x), s.Reduce(y)
		if xx == yy {
			return true
		}
		a := s.InOC(kk, xx, yy)
		b := s.InOC(kk, yy, xx)
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShr(t *testing.T) {
	s := MustSpace(6)
	if got := s.Shr(36, 1); got != 18 {
		t.Errorf("Shr(36,1) = %d, want 18", got)
	}
	if got := s.Shr(36, 2); got != 9 {
		t.Errorf("Shr(36,2) = %d, want 9", got)
	}
	if got := s.Shr(36, 7); got != 0 {
		t.Errorf("Shr beyond width = %d, want 0", got)
	}
}

func TestTopBits(t *testing.T) {
	s := MustSpace(6)
	tests := []struct {
		v    uint64
		n    uint
		want ID
	}{
		{1, 1, 32},
		{3, 2, 48},
		{1, 2, 16},
		{0, 3, 0},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := s.TopBits(tt.v, tt.n); got != tt.want {
			t.Errorf("TopBits(%d,%d) = %d, want %d", tt.v, tt.n, got, tt.want)
		}
	}
}

// TestPSCommonBitsPaperExample checks Definition 1 against values derived
// from the CAM-Koorde topology example (b = 6).
func TestPSCommonBits(t *testing.T) {
	s := MustSpace(6)
	tests := []struct {
		x, k ID
		want uint
	}{
		// x = 36 = 100100: prefix "1001" == suffix "1001" of k = 001001.
		{36, 9, 4},
		// identical identifiers share all 6 bits.
		{36, 36, 6},
		// x = 18 = 010010, k = 36 = 100100: prefix "0100" is suffix of 100100.
		{18, 36, 4},
		// no shared bits: x starts with 1, k ends with 0.
		{32, 0, 0},
	}
	for _, tt := range tests {
		if got := s.PSCommonBits(tt.x, tt.k); got != tt.want {
			t.Errorf("PSCommonBits(%06b, %06b) = %d, want %d", tt.x, tt.k, got, tt.want)
		}
	}
}

func TestPSCommonBitsShiftProperty(t *testing.T) {
	// Shifting k's low bits into the top of x increases ps-common bits.
	s := MustSpace(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := s.Reduce(rng.Uint64())
		k := s.Reduce(rng.Uint64())
		l := s.PSCommonBits(x, k)
		if l >= s.Bits() {
			continue
		}
		// Build y whose top l+1 bits equal the low l+1 bits of k and whose
		// remaining bits come from x's top bits (a de Bruijn-style move).
		n := l + 1
		y := s.TopBits(k&((uint64(1)<<n)-1), n) | s.Shr(x, n)
		if got := s.PSCommonBits(y, k); got < n {
			t.Fatalf("shift move did not extend ps-common bits: x=%b k=%b y=%b got=%d want>=%d",
				x, k, y, got, n)
		}
	}
}

func TestLog2Floor(t *testing.T) {
	tests := []struct {
		v    uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	}
	for _, tt := range tests {
		if got := Log2Floor(tt.v); got != tt.want {
			t.Errorf("Log2Floor(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestPowBound(t *testing.T) {
	tests := []struct {
		base, v uint64
		wantExp uint
		wantPow uint64
	}{
		{3, 1, 0, 1},
		{3, 2, 0, 1},
		{3, 3, 1, 3},
		{3, 8, 1, 3},
		{3, 9, 2, 9},
		{3, 26, 2, 9},
		{3, 27, 3, 27},
		{2, 1 << 18, 18, 1 << 18},
	}
	for _, tt := range tests {
		exp, pow := PowBound(tt.base, tt.v)
		if exp != tt.wantExp || pow != tt.wantPow {
			t.Errorf("PowBound(%d,%d) = (%d,%d), want (%d,%d)",
				tt.base, tt.v, exp, pow, tt.wantExp, tt.wantPow)
		}
	}
}

func TestPow(t *testing.T) {
	if got := Pow(3, 4); got != 81 {
		t.Errorf("Pow(3,4) = %d, want 81", got)
	}
	if got := Pow(2, 63); got != uint64(1)<<63 {
		t.Errorf("Pow(2,63) = %d", got)
	}
	if got := Pow(2, 64); got != ^uint64(0) {
		t.Errorf("Pow overflow should saturate, got %d", got)
	}
	if got := Pow(10, 0); got != 1 {
		t.Errorf("Pow(10,0) = %d, want 1", got)
	}
}

// TestLevelSeqPaperExample reproduces the worked example from Section 3.2:
// N = 32, c_x = 3. Identifier x+25 has level 2, sequence 2 with respect to x;
// with respect to x+18 (capacity 3), identifier x+25 has level 1, sequence 2.
func TestLevelSeqPaperExample(t *testing.T) {
	s := MustSpace(5)
	const c = 3
	var x ID = 7 // arbitrary origin; the example is translation-invariant

	level, seq, pow := s.LevelSeq(x, s.Add(x, 25), c)
	if level != 2 || seq != 2 {
		t.Errorf("LevelSeq(x, x+25) = (%d,%d), want (2,2)", level, seq)
	}
	if pow != 9 {
		t.Errorf("pow = %d, want 9", pow)
	}

	x18 := s.Add(x, 18)
	level, seq, _ = s.LevelSeq(x18, s.Add(x, 25), c)
	if level != 1 || seq != 2 {
		t.Errorf("LevelSeq(x+18, x+25) = (%d,%d), want (1,2)", level, seq)
	}
}

func TestLevelSeqBounds(t *testing.T) {
	// For any k != x and c >= 2, seq must land in [1, c-1] and
	// seq*c^level <= dist < (seq+1)*c^level.
	s := MustSpace(19)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		x := s.Reduce(rng.Uint64())
		k := s.Reduce(rng.Uint64())
		if x == k {
			continue
		}
		c := uint64(2 + rng.Intn(60))
		level, seq, pow := s.LevelSeq(x, k, c)
		d := s.Dist(x, k)
		if seq < 1 || seq > c-1 {
			t.Fatalf("seq %d out of [1,%d] for d=%d c=%d level=%d", seq, c-1, d, c, level)
		}
		if seq*pow > d || d >= (seq+1)*pow {
			t.Fatalf("seq*pow invariant violated: d=%d c=%d level=%d seq=%d pow=%d", d, c, level, seq, pow)
		}
	}
}

func TestReduce(t *testing.T) {
	s := MustSpace(19)
	if got := s.Reduce(1 << 19); got != 0 {
		t.Errorf("Reduce(2^19) = %d, want 0", got)
	}
	if got := s.Reduce((1 << 19) + 5); got != 5 {
		t.Errorf("Reduce(2^19+5) = %d, want 5", got)
	}
}

func TestSpaceString(t *testing.T) {
	s := MustSpace(19)
	if got := s.String(); got != "ring.Space{bits: 19}" {
		t.Errorf("String() = %q", got)
	}
}
