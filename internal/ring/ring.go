// Package ring implements identifier-space arithmetic for a circular
// identifier space [0, 2^b), the substrate shared by every overlay in this
// repository (Chord, Koorde, CAM-Chord and CAM-Koorde).
//
// Identifiers are represented as uint64 values; a Space fixes the number of
// bits b and therefore the modulus N = 2^b. All arithmetic is modulo N and
// all segments are clockwise: the segment (x, y] starts at x+1, moves
// clockwise (increasing identifiers, wrapping at N-1 back to 0) and ends at
// y, exactly as defined in Section 2 of the paper.
package ring

import (
	"fmt"
	"math/bits"
)

// MaxBits is the largest supported identifier width. Using 63 keeps every
// segment size representable in a uint64 without overflow during the
// (y - x) mod N computation.
const MaxBits = 63

// ID is an identifier on the ring. Only the low Space.Bits bits are
// meaningful; constructors and arithmetic keep IDs reduced modulo N.
type ID = uint64

// Space describes a 2^b identifier ring.
type Space struct {
	bits uint
	mask uint64 // N - 1
}

// NewSpace returns the identifier space [0, 2^bits).
func NewSpace(bitCount uint) (Space, error) {
	if bitCount == 0 || bitCount > MaxBits {
		return Space{}, fmt.Errorf("ring: bit count %d out of range [1, %d]", bitCount, MaxBits)
	}
	return Space{bits: bitCount, mask: (uint64(1) << bitCount) - 1}, nil
}

// MustSpace is NewSpace for statically known widths; it panics on an invalid
// width and is intended for package-level defaults and tests.
func MustSpace(bitCount uint) Space {
	s, err := NewSpace(bitCount)
	if err != nil {
		panic(err)
	}
	return s
}

// Bits returns the identifier width b.
func (s Space) Bits() uint { return s.bits }

// Size returns N = 2^b as a uint64.
func (s Space) Size() uint64 { return s.mask + 1 }

// Mask returns N-1, useful for reducing raw values onto the ring.
func (s Space) Mask() uint64 { return s.mask }

// Reduce maps an arbitrary uint64 onto the ring.
func (s Space) Reduce(v uint64) ID { return v & s.mask }

// Add returns (x + d) mod N.
func (s Space) Add(x ID, d uint64) ID { return (x + d) & s.mask }

// Sub returns (x - d) mod N.
func (s Space) Sub(x ID, d uint64) ID { return (x - d) & s.mask }

// Dist returns the clockwise distance from x to y, i.e. the size of the
// segment (x, y], written (y - x) in the paper. It is zero iff x == y.
func (s Space) Dist(x, y ID) uint64 { return (y - x) & s.mask }

// AbsDist returns the ring distance |x - y| = min((y-x) mod N, (x-y) mod N).
func (s Space) AbsDist(x, y ID) uint64 {
	cw := s.Dist(x, y)
	ccw := s.Dist(y, x)
	if cw < ccw {
		return cw
	}
	return ccw
}

// InOC reports whether k lies in the clockwise-open/closed segment (x, y].
// The segment (x, x] is empty.
func (s Space) InOC(k, x, y ID) bool {
	if x == y {
		return false
	}
	return s.Dist(x, k) <= s.Dist(x, y) && k != x
}

// InOO reports whether k lies in the open segment (x, y).
func (s Space) InOO(k, x, y ID) bool {
	return s.InOC(k, x, y) && k != y
}

// InCO reports whether k lies in the segment [x, y).
func (s Space) InCO(k, x, y ID) bool {
	return k == x || s.InOO(k, x, y)
}

// Shr returns x shifted right by n bits within the space (x / 2^n).
func (s Space) Shr(x ID, n uint) ID {
	if n >= s.bits {
		return 0
	}
	return x >> n
}

// Half returns 2^(b-1), the identifier diametrically opposite 0.
func (s Space) Half() ID { return uint64(1) << (s.bits - 1) }

// TopBits returns the value v placed in the top n bits of the space,
// i.e. v << (b - n). v must fit in n bits.
func (s Space) TopBits(v uint64, n uint) ID {
	if n == 0 || n > s.bits {
		return 0
	}
	return s.Reduce(v << (s.bits - n))
}

// PSCommonBits returns the number of ps-common bits shared by x and k per
// Definition 1 of the paper: the length l of the longest l-bit prefix of x
// that equals the l-bit suffix of k. Both are read as b-bit strings.
func (s Space) PSCommonBits(x, k ID) uint {
	for l := s.bits; l > 0; l-- {
		prefix := x >> (s.bits - l)
		suffix := k & ((uint64(1) << l) - 1)
		if prefix == suffix {
			return l
		}
	}
	return 0
}

// Log2Floor returns floor(log2(v)) for v >= 1.
func Log2Floor(v uint64) uint {
	if v == 0 {
		return 0
	}
	return uint(bits.Len64(v) - 1)
}

// PowBound returns the largest exponent i such that base^i <= v, together
// with base^i. base must be >= 2 and v >= 1.
func PowBound(base, v uint64) (exp uint, pow uint64) {
	pow = 1
	for pow <= v/base {
		pow *= base
		exp++
	}
	return exp, pow
}

// Pow returns base^exp, saturating at math.MaxUint64 on overflow.
func Pow(base uint64, exp uint) uint64 {
	result := uint64(1)
	for i := uint(0); i < exp; i++ {
		if base != 0 && result > ^uint64(0)/base {
			return ^uint64(0)
		}
		result *= base
	}
	return result
}

// LevelSeq computes the level i and sequence number j of identifier k with
// respect to node x for capacity c, per equations (1) and (2) of the paper:
//
//	i = floor(log(k - x) / log c)
//	j = floor((k - x) / c^i)
//
// It requires k != x (so the clockwise distance is >= 1) and c >= 2.
// The returned pow is c^i.
func (s Space) LevelSeq(x, k ID, c uint64) (level uint, seq uint64, pow uint64) {
	d := s.Dist(x, k)
	level, pow = PowBound(c, d)
	seq = d / pow
	return level, seq, pow
}

// String implements fmt.Stringer for diagnostics.
func (s Space) String() string {
	return fmt.Sprintf("ring.Space{bits: %d}", s.bits)
}
