package geo

import "testing"

func TestNewUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 100, 1); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NewUniform(10, 0, 1); err == nil {
		t.Error("zero max delay should fail")
	}
}

func TestNewClusteredValidation(t *testing.T) {
	if _, err := NewClustered(0, 1, 100, 1, 1); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NewClustered(10, 0, 100, 1, 1); err == nil {
		t.Error("zero clusters should fail")
	}
	if _, err := NewClustered(10, 2, 100, -1, 1); err == nil {
		t.Error("negative jitter should fail")
	}
}

func TestDelayProperties(t *testing.T) {
	m, err := NewUniform(50, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d", m.Len())
	}
	for a := 0; a < 50; a += 7 {
		for b := 0; b < 50; b += 5 {
			dab, dba := m.Delay(a, b), m.Delay(b, a)
			if dab != dba {
				t.Fatalf("delay not symmetric: %g vs %g", dab, dba)
			}
			if dab < 0 || dab > 100.0001 {
				t.Fatalf("delay %g out of [0, 100]", dab)
			}
			if a == b && dab != 0 {
				t.Fatalf("self delay %g", dab)
			}
		}
	}
}

func TestClusteredStructure(t *testing.T) {
	m, err := NewClustered(400, 8, 120, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var intraN, interN int
	for a := 0; a < 200; a++ {
		for b := a + 1; b < 200; b++ {
			d := m.Delay(a, b)
			if m.Cluster(a) == m.Cluster(b) {
				intra += d
				intraN++
			} else {
				inter += d
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Fatal("degenerate clustering")
	}
	meanIntra, meanInter := intra/float64(intraN), inter/float64(interN)
	if meanIntra*10 > meanInter {
		t.Errorf("intra-cluster delay %.2fms not well below inter-cluster %.2fms", meanIntra, meanInter)
	}
	if meanIntra > 2 {
		t.Errorf("intra-cluster delay %.2fms exceeds 2x jitter", meanIntra)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewClustered(100, 4, 100, 1, 9)
	b, _ := NewClustered(100, 4, 100, 1, 9)
	for i := 0; i < 100; i++ {
		if a.Delay(0, i) != b.Delay(0, i) {
			t.Fatal("models with same seed differ")
		}
		if a.Cluster(i) != b.Cluster(i) {
			t.Fatal("cluster assignment differs")
		}
	}
}

func TestMeanDelay(t *testing.T) {
	m, _ := NewUniform(100, 100, 1)
	mean := m.MeanDelay(2000, 2)
	if mean <= 0 || mean >= 100 {
		t.Errorf("MeanDelay = %g", mean)
	}
	single, _ := NewUniform(1, 100, 1)
	if single.MeanDelay(10, 1) != 0 {
		t.Error("single-node mean delay should be 0")
	}
}
