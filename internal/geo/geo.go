// Package geo models the geography underneath the overlay (Section 5.2 of
// the paper): every node gets a position in a 2-D latency plane, and the
// one-way delay between two nodes is proportional to their Euclidean
// distance. The clustered generator mirrors the Internet's structure —
// nodes form LAN/metro clusters with sub-millisecond internal delays,
// separated by up to transcontinental distances — which is exactly the
// situation Proximity Neighbor Selection exploits.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Model assigns coordinates to node positions and computes pairwise delays.
type Model struct {
	coords  [][2]float64
	cluster []int
}

// NewUniform places n nodes uniformly in a plane whose diameter corresponds
// to maxDelayMs.
func NewUniform(n int, maxDelayMs float64, seed int64) (*Model, error) {
	if n < 1 {
		return nil, fmt.Errorf("geo: need at least one node, got %d", n)
	}
	if maxDelayMs <= 0 {
		return nil, fmt.Errorf("geo: max delay %g must be positive", maxDelayMs)
	}
	rng := rand.New(rand.NewSource(seed))
	side := maxDelayMs / math.Sqrt2
	m := &Model{coords: make([][2]float64, n), cluster: make([]int, n)}
	for i := range m.coords {
		m.coords[i] = [2]float64{rng.Float64() * side, rng.Float64() * side}
	}
	return m, nil
}

// NewClustered places n nodes into clusters (LANs/metros): cluster centers
// are uniform in the plane, members jitter within jitterMs of their center.
func NewClustered(n, clusters int, maxDelayMs, jitterMs float64, seed int64) (*Model, error) {
	if n < 1 || clusters < 1 {
		return nil, fmt.Errorf("geo: need at least one node and one cluster (n=%d, clusters=%d)", n, clusters)
	}
	if maxDelayMs <= 0 || jitterMs < 0 {
		return nil, fmt.Errorf("geo: bad delays (max=%g, jitter=%g)", maxDelayMs, jitterMs)
	}
	rng := rand.New(rand.NewSource(seed))
	side := maxDelayMs / math.Sqrt2
	centers := make([][2]float64, clusters)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * side, rng.Float64() * side}
	}
	m := &Model{coords: make([][2]float64, n), cluster: make([]int, n)}
	for i := range m.coords {
		c := rng.Intn(clusters)
		m.cluster[i] = c
		angle := rng.Float64() * 2 * math.Pi
		r := rng.Float64() * jitterMs
		m.coords[i] = [2]float64{
			centers[c][0] + r*math.Cos(angle),
			centers[c][1] + r*math.Sin(angle),
		}
	}
	return m, nil
}

// Len returns the number of modeled nodes.
func (m *Model) Len() int { return len(m.coords) }

// Cluster returns the cluster index of node i (0 for uniform models).
func (m *Model) Cluster(i int) int { return m.cluster[i] }

// Delay returns the one-way delay in milliseconds between nodes a and b.
func (m *Model) Delay(a, b int) float64 {
	dx := m.coords[a][0] - m.coords[b][0]
	dy := m.coords[a][1] - m.coords[b][1]
	return math.Sqrt(dx*dx + dy*dy)
}

// MeanDelay estimates the mean pairwise delay by sampling.
func (m *Model) MeanDelay(samples int, seed int64) float64 {
	if len(m.coords) < 2 || samples < 1 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < samples; i++ {
		a := rng.Intn(len(m.coords))
		b := rng.Intn(len(m.coords))
		sum += m.Delay(a, b)
	}
	return sum / float64(samples)
}
