package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary %+v", s)
	}
	if s.Mean != 5 {
		t.Errorf("mean %g, want 5", s.Mean)
	}
	if math.Abs(s.Stddev-2) > 1e-12 {
		t.Errorf("stddev %g, want 2", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	values := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {-5, 1}, {150, 5},
	}
	for _, tt := range tests {
		if got := Percentile(values, tt.p); got != tt.want {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated.
	if values[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(0, 1)
	h.Add(2, 3)
	h.Add(2, 1)
	h.Add(-1, 99) // ignored
	if h.Bins() != 3 {
		t.Errorf("Bins = %d", h.Bins())
	}
	if h.Count(2) != 4 || h.Count(1) != 0 || h.Count(99) != 0 {
		t.Error("counts wrong")
	}
	if h.Total() != 5 {
		t.Errorf("Total = %g", h.Total())
	}
	if got := h.Mean(); math.Abs(got-8.0/5) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if h.Mode() != 2 {
		t.Errorf("Mode = %d", h.Mode())
	}
}

func TestHistogramAddCounts(t *testing.T) {
	var h Histogram
	h.AddCounts([]int{1, 0, 2}, 0.5)
	if h.Count(0) != 0.5 || h.Count(2) != 1 {
		t.Error("AddCounts wrong")
	}
	if h.Total() != 1.5 {
		t.Errorf("Total = %g", h.Total())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Mode() != 0 || h.Total() != 0 {
		t.Error("empty histogram stats should be zero")
	}
}

func TestSeriesTSV(t *testing.T) {
	s := Series{Label: "cam-chord", Points: []Point{{1, 2.5}, {3, 4}}}
	got := s.TSV()
	if !strings.HasPrefix(got, "# cam-chord\n") {
		t.Errorf("TSV header missing: %q", got)
	}
	if !strings.Contains(got, "1\t2.5\n") || !strings.Contains(got, "3\t4\n") {
		t.Errorf("TSV rows missing: %q", got)
	}
}
