// Package metrics provides the small statistics toolkit used by the
// experiment harness: summary statistics, integer histograms, and mergeable
// accumulators for averaging results over multiple multicast sources.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Summary holds basic descriptive statistics of a float sample.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary over values. An empty input yields a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(values), Min: values[0], Max: values[0]}
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(values)))
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// nearest-rank on a sorted copy. An empty input yields 0.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Histogram accumulates counts over non-negative integer bins (hop counts).
type Histogram struct {
	counts []float64
	total  float64
}

// Add increments bin by weight.
func (h *Histogram) Add(bin int, weight float64) {
	if bin < 0 {
		return
	}
	for len(h.counts) <= bin {
		h.counts = append(h.counts, 0)
	}
	h.counts[bin] += weight
	h.total += weight
}

// AddCounts merges a dense count slice (index = bin) scaled by weight.
func (h *Histogram) AddCounts(counts []int, weight float64) {
	for bin, c := range counts {
		if c != 0 {
			h.Add(bin, float64(c)*weight)
		}
	}
}

// Bins returns the number of bins (max bin + 1).
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the accumulated weight in bin.
func (h *Histogram) Count(bin int) float64 {
	if bin < 0 || bin >= len(h.counts) {
		return 0
	}
	return h.counts[bin]
}

// Total returns the total accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Mean returns the weighted mean bin.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for bin, c := range h.counts {
		sum += float64(bin) * c
	}
	return sum / h.total
}

// Mode returns the bin with the largest weight (the peak of the
// distribution; ties resolve to the smallest bin).
func (h *Histogram) Mode() int {
	best, bestCount := 0, math.Inf(-1)
	for bin, c := range h.counts {
		if c > bestCount {
			best, bestCount = bin, c
		}
	}
	return best
}

// Counters is a concurrency-safe set of named monotonic counters. The
// dynamic runtime uses one shared Counters per group to expose forwarding
// outcomes (children acked, retries, segments repaired, segments lost)
// without each observer having to poll every member. The zero value is
// ready to use.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Counter names emitted by the runtime's forwarding engine.
const (
	CounterForwardAcked    = "forward.acked"    // child sends acknowledged
	CounterForwardRetries  = "forward.retries"  // send retries after a failure
	CounterForwardRepaired = "forward.repaired" // orphan segments handed to a live node
	CounterForwardLost     = "forward.lost"     // segments abandoned after repair failed
)

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += delta
}

// Get returns the current value of the named counter (0 if never touched).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Series is a labeled sequence of (x, y) points — one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// TSV renders the series as tab-separated "x<TAB>y" rows preceded by a
// comment header carrying the label, matching gnuplot conventions.
func (s Series) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Label)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
	}
	return b.String()
}
