package obsv

import (
	"sync"
	"testing"
	"time"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	b.Emit("a", KindForward, "x")
	b.Emitf("a", KindForward, "%d", 1)
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	if b.Subscribers() != 0 {
		t.Fatal("nil bus reports subscribers")
	}
}

func TestBusDeliversInOrder(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(16)
	defer sub.Close()
	b.Emit("n1", KindJoin, "first")
	b.Emit("n2", KindForward, "second")
	b.Emit("n3", KindLost, "third")

	var got []Event
	got = sub.Drain(got)
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3", len(got))
	}
	for i, want := range []string{"first", "second", "third"} {
		if got[i].Detail != want {
			t.Errorf("event %d detail = %q, want %q", i, got[i].Detail, want)
		}
	}
	if got[0].Seq >= got[1].Seq || got[1].Seq >= got[2].Seq {
		t.Errorf("sequence numbers not increasing: %d %d %d", got[0].Seq, got[1].Seq, got[2].Seq)
	}
	if got[0].At.IsZero() {
		t.Error("event timestamp not stamped")
	}
}

func TestBusEmitfFormatsOnlyWhenSubscribed(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4)
	defer sub.Close()
	b.Emitf("n", KindRetry, "attempt %d to %s", 2, "peer")
	e, ok := sub.Poll()
	if !ok {
		t.Fatal("no event")
	}
	if e.Detail != "attempt 2 to peer" {
		t.Errorf("detail = %q", e.Detail)
	}
}

// TestBusBackpressure is the satellite backpressure gate: a deliberately
// slow subscriber (it never drains its tiny ring) must observe
// monotonically increasing drop counts while a fast subscriber attached to
// the same bus loses nothing.
func TestBusBackpressure(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(4)
	defer slow.Close()
	fast := b.Subscribe(4096)
	defer fast.Close()

	const emits = 1000
	var lastDrops uint64
	for i := 0; i < emits; i++ {
		b.Emit("n", KindForward, "payload")
		if d := slow.Dropped(); d < lastDrops {
			t.Fatalf("drop count went backwards: %d -> %d", lastDrops, d)
		} else {
			lastDrops = d
		}
	}
	if slow.Dropped() != emits-4 {
		t.Errorf("slow subscriber dropped %d, want %d (ring of 4)", slow.Dropped(), emits-4)
	}
	if slow.Len() != 4 {
		t.Errorf("slow ring holds %d, want 4", slow.Len())
	}
	if fast.Dropped() != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", fast.Dropped())
	}
	if fast.Len() != emits {
		t.Errorf("fast subscriber buffered %d, want %d", fast.Len(), emits)
	}
	// The slow ring kept the OLDEST events (drop-newest policy).
	e, ok := slow.Poll()
	if !ok || e.Seq != 1 {
		t.Errorf("slow ring head seq = %d (ok=%v), want 1", e.Seq, ok)
	}
}

// TestEmitNoSubscriberDoesNotAllocate is the alloc-gate: the emit fast
// path with zero subscribers must be allocation-free.
func TestEmitNoSubscriberDoesNotAllocate(t *testing.T) {
	b := NewBus()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Emit("node-1", KindForward, "msg#1 -> segment end 42")
	})
	if allocs != 0 {
		t.Errorf("Emit with no subscribers allocates %.1f per op, want 0", allocs)
	}
}

// Emit with subscribers must not allocate either: rings are preallocated.
func TestEmitWithSubscriberDoesNotAllocate(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	defer sub.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Emit("node-1", KindForward, "msg#1 -> segment end 42")
	})
	if allocs != 0 {
		t.Errorf("Emit with a subscriber allocates %.1f per op, want 0", allocs)
	}
}

func TestSubscriptionNextBlocksAndWakes(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	defer sub.Close()

	got := make(chan Event, 1)
	go func() {
		e, ok := sub.Next()
		if ok {
			got <- e
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Emit("n", KindDeliver, "wake")
	select {
	case e := <-got:
		if e.Detail != "wake" {
			t.Errorf("detail = %q", e.Detail)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on emit")
	}
}

func TestSubscriptionCloseWakesNext(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Next returned ok=true after close on empty ring")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not return after Close")
	}
	if b.Subscribers() != 0 {
		t.Errorf("bus still has %d subscribers after close", b.Subscribers())
	}
	// Emitting to a closed-out bus is fine.
	b.Emit("n", KindJoin, "after close")
}

func TestBusConcurrentEmitAndSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Emit("n", KindForward, "spin")
				}
			}
		}()
	}
	var total uint64
	for i := 0; i < 50; i++ {
		sub := b.Subscribe(64)
		time.Sleep(time.Millisecond)
		total += uint64(sub.Len())
		sub.Close()
	}
	close(stop)
	wg.Wait()
	if total == 0 {
		t.Error("no events observed across churned subscribers")
	}
}
