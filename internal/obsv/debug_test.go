package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func debugServer(t *testing.T, d Debug) string {
	t.Helper()
	srv, addr, err := d.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestDebugStatsServesRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricForwardAcked).Add(7)
	r.Histogram(MetricLookupHops, CountBuckets(4)).Observe(2)
	addr := debugServer(t, Debug{
		Registry: r,
		Extra:    func() any { return map[string]int{"members": 3} },
	})

	resp, err := http.Get("http://" + addr + "/debug/camcast/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var out struct {
		Metrics Snapshot       `json:"metrics"`
		Extra   map[string]int `json:"extra"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Metrics.Counters[MetricForwardAcked] != 7 {
		t.Errorf("counter = %d, want 7", out.Metrics.Counters[MetricForwardAcked])
	}
	if out.Metrics.Histograms[MetricLookupHops].Count != 1 {
		t.Errorf("histogram count = %d, want 1", out.Metrics.Histograms[MetricLookupHops].Count)
	}
	if out.Extra["members"] != 3 {
		t.Errorf("extra = %v", out.Extra)
	}
}

func TestDebugNeighbors(t *testing.T) {
	addr := debugServer(t, Debug{
		Neighbors: func() any {
			return []map[string]any{{"addr": "alice", "id": 42}}
		},
	})
	resp, err := http.Get("http://" + addr + "/debug/camcast/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 1 || out[0]["addr"] != "alice" {
		t.Errorf("neighbors = %v", out)
	}
}

func TestDebugEventsStreamsTail(t *testing.T) {
	bus := NewBus()
	addr := debugServer(t, Debug{Bus: bus})

	resp, err := http.Get("http://" + addr + "/debug/camcast/events?buffer=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The subscription attaches before the handler writes the header, so
	// events emitted after the GET returns are observed.
	deadline := time.Now().Add(2 * time.Second)
	for bus.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		bus.Emitf("n%d", KindForward, "event %d", i)
	}

	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d events: %v", i, sc.Err())
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d invalid JSON %q: %v", i, sc.Text(), err)
		}
		if e.Detail != fmt.Sprintf("event %d", i) {
			t.Errorf("line %d detail = %q", i, e.Detail)
		}
	}
	resp.Body.Close()
	// Disconnecting tears the subscription down.
	deadline = time.Now().Add(2 * time.Second)
	for bus.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription leaked after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDebugEventsWithoutBus404s(t *testing.T) {
	addr := debugServer(t, Debug{})
	resp, err := http.Get("http://" + addr + "/debug/camcast/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestDebugPprofIndex(t *testing.T) {
	addr := debugServer(t, Debug{})
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
}
