package obsv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

func listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Debug describes what a debug HTTP endpoint exposes. Any field may be
// nil; the corresponding route then serves an empty value.
type Debug struct {
	// Registry snapshots into /debug/camcast/stats.
	Registry *Registry
	// Bus feeds the /debug/camcast/events streaming tail.
	Bus *Bus
	// Neighbors returns the JSON-marshalable overlay introspection served
	// at /debug/camcast/neighbors (per-member ring neighbors).
	Neighbors func() any
	// Extra returns additional JSON-marshalable state merged into
	// /debug/camcast/stats under "extra" (e.g. per-member Stats).
	Extra func() any
}

// Handler returns the debug HTTP handler: expvar-style JSON metric
// snapshots, live overlay introspection, a streaming event tail, and the
// standard pprof profiles.
//
//	GET /debug/camcast/stats      {"metrics": <registry snapshot>, "extra": ...}
//	GET /debug/camcast/neighbors  per-member ring neighbor sets
//	GET /debug/camcast/events     NDJSON event tail; ?buffer=N sizes the
//	                              subscriber ring (default 1024); the
//	                              stream ends when the client disconnects
//	GET /debug/pprof/...          net/http/pprof
func (d Debug) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/camcast/stats", d.serveStats)
	mux.HandleFunc("/debug/camcast/neighbors", d.serveNeighbors)
	mux.HandleFunc("/debug/camcast/events", d.serveEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe starts the debug endpoint on addr, returning the server
// (shut it down with Close) and the bound address. It returns once the
// listener is accepting, so a caller can immediately curl it.
func (d Debug) ListenAndServe(addr string) (*http.Server, string, error) {
	srv := &http.Server{Handler: d.Handler()}
	ln, err := listen(addr)
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (d Debug) serveStats(w http.ResponseWriter, r *http.Request) {
	out := struct {
		At      time.Time `json:"at"`
		Metrics Snapshot  `json:"metrics"`
		// Quantiles precomputes p50/p95/p99 per histogram (clamped to the
		// top bucket bound) so dashboards and scripts read percentiles —
		// lookup hop counts, RPC latencies — without re-deriving them from
		// the raw buckets.
		Quantiles map[string]map[string]float64 `json:"quantiles,omitempty"`
		Extra     any                           `json:"extra,omitempty"`
	}{At: time.Now(), Metrics: d.Registry.Snapshot()}
	if len(out.Metrics.Histograms) > 0 {
		out.Quantiles = make(map[string]map[string]float64, len(out.Metrics.Histograms))
		for name, h := range out.Metrics.Histograms {
			out.Quantiles[name] = map[string]float64{
				"p50": h.BoundedQuantile(0.50),
				"p95": h.BoundedQuantile(0.95),
				"p99": h.BoundedQuantile(0.99),
			}
		}
	}
	if d.Extra != nil {
		out.Extra = d.Extra()
	}
	writeJSON(w, out)
}

func (d Debug) serveNeighbors(w http.ResponseWriter, r *http.Request) {
	var v any
	if d.Neighbors != nil {
		v = d.Neighbors()
	}
	writeJSON(w, v)
}

// serveEvents streams the live event tail as NDJSON until the client goes
// away. Each subscriber gets its own bounded ring; a client that reads too
// slowly loses the newest events, and the final count of those drops is
// its own problem — the protocol goroutines never notice.
func (d Debug) serveEvents(w http.ResponseWriter, r *http.Request) {
	if d.Bus == nil {
		http.Error(w, "no event bus", http.StatusNotFound)
		return
	}
	buffer := 1024
	if s := r.URL.Query().Get("buffer"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			buffer = n
		}
	}
	sub := d.Bus.Subscribe(buffer)
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now so a tailing client sees the stream
		// open immediately, not at the first event.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		// Wake on either an event or client disconnect.
		e, ok := poll(ctx, sub)
		if !ok {
			return
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if flusher != nil && sub.Len() == 0 {
			flusher.Flush()
		}
	}
}

// poll returns the next event, blocking until one arrives or ctx is done.
func poll(ctx interface{ Done() <-chan struct{} }, sub *Subscription) (Event, bool) {
	for {
		if e, ok := sub.Poll(); ok {
			return e, true
		}
		select {
		case <-ctx.Done():
			return Event{}, false
		case <-sub.notify:
		}
	}
}
