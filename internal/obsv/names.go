package obsv

// The metric catalog: every name the instrumented layers register, in one
// place so daemons, dashboards and DESIGN.md agree. Units are encoded in
// the name suffix where they matter (histograms of durations are seconds).
const (
	// Transport (internal/transport, both TCP and the in-memory Network).
	MetricRPCLatency   = "transport.rpc.latency_seconds" // histogram: request/response round trip
	MetricRPCInflight  = "transport.rpc.inflight"        // gauge: calls issued but not yet completed
	MetricRPCCalls     = "transport.rpc.calls"           // counter: calls issued
	MetricRPCErrors    = "transport.rpc.errors"          // counter: calls that returned an error
	MetricFlushBatch   = "transport.flush.batch_frames"  // histogram: frames coalesced per socket flush
	MetricServerServed = "transport.server.requests"     // counter: requests served by accept-side workers

	// Zero-copy data path (shared name between transport and runtime: a
	// TCPMember's transport and node write into one registry, so blob
	// materializations from both layers land in one counter).
	MetricBytesSent      = "transport.bytes_sent"      // counter: frame bytes written to sockets
	MetricBytesReceived  = "transport.bytes_received"  // counter: frame bytes read from sockets
	MetricPayloadEncodes = "transport.payload_encodes" // counter: payload materializations (blob builds + per-frame fallback encodes)

	// Multi-group transport sharing: per-group flow accounting on the
	// shared frame writer. One counter per non-default group, named
	// ForGroup(base, label) where label is the group's registered name (or
	// its decimal flow label when unnamed).
	MetricGroupBytesSent    = "transport.group.bytes_sent"    // counter: frame bytes written for one group
	MetricGroupBacklogDrops = "transport.group.backlog_drops" // counter: requests refused by the group's backlog quota

	// Runtime protocol layer (internal/runtime).
	MetricForwardAcked    = "runtime.forward.acked"            // counter: child sends acknowledged
	MetricForwardRetries  = "runtime.forward.retries"          // counter: child sends retried
	MetricForwardRepaired = "runtime.forward.repaired"         // counter: orphan segments handed to a live node
	MetricForwardLost     = "runtime.forward.lost"             // counter: segments abandoned
	MetricDuplicates      = "runtime.duplicates"               // counter: duplicate deliveries/offers suppressed
	MetricDelivered       = "runtime.delivered"                // counter: multicast deliveries to the application
	MetricLookupHops      = "runtime.lookup.hops"              // histogram: hops per completed lookup
	MetricMulticastTime   = "runtime.multicast.tree_seconds"   // histogram: full dissemination-tree completion time at the source
	MetricEventsDropped   = "runtime.events.subscriber_drops"  // counter: bus events dropped across detached rings (daemon-level)
	MetricSegmentSpread   = "runtime.multicast.spread_seconds" // histogram: per-node segment spread time
	MetricJoinTime        = "runtime.join.seconds"             // histogram: wall time for Join (bootstrap lookup + first stabilize)
	MetricLeaveTime       = "runtime.leave.seconds"            // histogram: wall time for a graceful Leave's splice-out RPCs

	// Sharded maintenance scheduler (internal/runtime.Scheduler).
	MetricSchedMembers = "runtime.sched.members" // gauge: members currently owned by the scheduler
	MetricSchedRounds  = "runtime.sched.rounds"  // counter: maintenance callbacks executed (stabilize + fix + sweeps)
)

// ForGroup derives the registry name of a per-group metric: the base
// catalog name with the group label appended.
func ForGroup(metric, group string) string { return metric + "." + group }
