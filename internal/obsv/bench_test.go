package obsv

import (
	"testing"
)

// BenchmarkEmitNoSubscriber is the acceptance gate: the emit path with no
// subscribers must be ~one atomic load and 0 allocs/op.
func BenchmarkEmitNoSubscriber(b *testing.B) {
	bus := NewBus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Emit("node-1", KindForward, "msg#1 -> segment end 42")
	}
}

// BenchmarkEmitOneSubscriber measures the full fan-out path: stamp, ring
// append, notify.
func BenchmarkEmitOneSubscriber(b *testing.B) {
	bus := NewBus()
	sub := bus.Subscribe(1024)
	defer sub.Close()
	go func() { // drain so the ring never backs up
		for {
			if _, ok := sub.Next(); !ok {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Emit("node-1", KindForward, "msg#1 -> segment end 42")
	}
}

// BenchmarkEmitSaturatedSubscriber measures the drop path: ring full, the
// event is discarded and counted.
func BenchmarkEmitSaturatedSubscriber(b *testing.B) {
	bus := NewBus()
	sub := bus.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 4; i++ {
		bus.Emit("n", KindForward, "fill")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Emit("node-1", KindForward, "msg#1 -> segment end 42")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench", LatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter(MetricForwardAcked + string(rune('a'+i))).Inc()
	}
	r.Histogram(MetricRPCLatency, LatencyBuckets).Observe(0.001)
	r.Histogram(MetricLookupHops, CountBuckets(16)).Observe(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
