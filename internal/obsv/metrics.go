package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe set of named metrics: monotonic counters,
// gauges, and fixed-bucket histograms. Instruments are created once
// (get-or-create by name) and then updated lock-free with single atomic
// operations; Snapshot walks the registry without stopping writers.
//
// A nil *Registry hands out nil instruments, and every instrument method
// is nil-safe, so instrumented code needs no "is observability on?"
// branches: an unobserved node updates nil handles for the cost of a
// nil check.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (bounds are sorted and must be
// non-empty on first creation; later calls reuse the existing buckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonic uint64 counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by delta; Inc by one. Nil-safe.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value (e.g. in-flight calls).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets chosen at
// creation. Observe is lock-free: one atomic add on the bucket counter
// plus atomic total/sum updates. Bucket i counts observations <=
// bounds[i]; one extra overflow bucket counts the rest.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; immutable after creation
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits of the running sum (CAS loop)
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds:  bs,
		buckets: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search the bucket: len(bounds) is small and fixed.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// LatencyBuckets are the default upper bounds (seconds) for RPC round-trip
// histograms: 50µs to 5s, roughly exponential.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// CountBuckets returns linear upper bounds 1..n — suitable for small
// discrete quantities such as flush batch sizes.
func CountBuckets(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// HopBuckets are the upper bounds for lookup hop-count histograms: exact
// 1..16 for the converged-ring range, then coarser steps out to 512 — past
// the runtime's lookup hop budget, so even a failed lookup recorded at
// max-hops lands in a bounded bucket and quantiles stay finite.
var HopBuckets = []float64{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
	24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON
// (expvar-style: flat name -> value maps per instrument kind).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets[i] counts observations <= Bounds[i]; the final entry of
	// Buckets (one past the last bound) counts overflow observations.
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Mean returns the mean observation (0 with no observations).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// from the bucket counts: the smallest bucket bound at which the
// cumulative count reaches q*Count. Overflow observations report +Inf.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// BoundedQuantile is Quantile clamped to the histogram's largest bucket
// bound, so the estimate stays finite (and JSON-marshalable) even when the
// rank falls in the overflow bucket.
func (h HistogramSnapshot) BoundedQuantile(q float64) float64 {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		if len(h.Bounds) == 0 {
			return 0
		}
		return h.Bounds[len(h.Bounds)-1]
	}
	return v
}

// Snapshot copies the registry's current state. Nil-safe (returns a zero
// Snapshot).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Load()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Count:   h.count.Load(),
				Sum:     math.Float64frombits(h.sum.Load()),
				Bounds:  h.bounds,
				Buckets: make([]uint64, len(h.buckets)),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}
