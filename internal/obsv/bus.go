package obsv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Bus is a non-blocking pub/sub fan-out of protocol events. Emitters pay
// one atomic load when nobody is subscribed; with subscribers, each emit
// copies the event into every subscriber's bounded ring under that
// subscriber's own mutex — no allocation, no cross-subscriber contention.
// A subscriber that falls behind loses the newest events (counted on its
// Dropped counter) rather than slowing the emitter or its siblings.
//
// A nil *Bus is safe: it discards everything, so protocol code can thread
// a bus unconditionally. The zero value is ready to use.
type Bus struct {
	nsubs atomic.Int32  // fast-path emitter check; len(subs) under mu
	seq   atomic.Uint64 // bus-wide event sequence

	mu   sync.Mutex
	subs atomic.Pointer[[]*Subscription] // copy-on-write; writers hold mu
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Active reports whether at least one subscriber is attached. Emitters
// that must build an expensive detail string should check Active first;
// Emit itself already early-outs, so plain emit sites need no guard.
func (b *Bus) Active() bool {
	return b != nil && b.nsubs.Load() > 0
}

// Emit publishes one event. With no subscribers it is one atomic load and
// returns without allocating; otherwise the event is stamped and copied
// into every subscriber's ring.
func (b *Bus) Emit(node string, kind Kind, detail string) {
	if b == nil || b.nsubs.Load() == 0 {
		return
	}
	b.emit(node, kind, detail)
}

// Emitf publishes one event with a formatted detail string; the formatting
// happens only when a subscriber is attached. Note the variadic boxing is
// paid at the call site regardless — truly hot emit points should guard
// with Active and call Emit with a preformatted string.
func (b *Bus) Emitf(node string, kind Kind, format string, args ...any) {
	if b == nil || b.nsubs.Load() == 0 {
		return
	}
	b.emit(node, kind, fmt.Sprintf(format, args...))
}

func (b *Bus) emit(node string, kind Kind, detail string) {
	e := Event{
		Seq:    b.seq.Add(1),
		Node:   node,
		Kind:   kind,
		Detail: detail,
		At:     time.Now(),
	}
	subs := b.subs.Load()
	if subs == nil {
		return
	}
	for _, s := range *subs {
		s.push(e)
	}
}

// Subscribe attaches a new subscriber with a ring of the given capacity
// (minimum 1; values <= 0 mean the default of 256). The subscriber must
// eventually call Close to detach, or emitters keep paying for it.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscription{
		bus:    b,
		ring:   make([]Event, buffer),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	old := b.subs.Load()
	var next []*Subscription
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	b.subs.Store(&next)
	b.nsubs.Store(int32(len(next)))
	b.mu.Unlock()
	return s
}

// Subscribers returns the number of attached subscribers.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return int(b.nsubs.Load())
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	old := b.subs.Load()
	if old != nil {
		next := make([]*Subscription, 0, len(*old))
		for _, cur := range *old {
			if cur != s {
				next = append(next, cur)
			}
		}
		b.subs.Store(&next)
		b.nsubs.Store(int32(len(next)))
	}
	b.mu.Unlock()
}

// Subscription is one subscriber's bounded view of a bus. Events are
// buffered in a fixed ring; when the ring is full, new events for this
// subscriber are dropped (newest-dropped policy) and counted. Methods are
// safe for one concurrent consumer alongside any number of emitters.
type Subscription struct {
	bus     *Bus
	dropped atomic.Uint64

	mu     sync.Mutex
	ring   []Event
	head   int // index of the oldest buffered event
	n      int // buffered event count
	closed bool

	notify chan struct{} // signaled (non-blocking) when an event arrives
}

// push appends one event, dropping it (and counting) when the ring is full.
func (s *Subscription) push(e Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	s.ring[(s.head+s.n)%len(s.ring)] = e
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Poll removes and returns the oldest buffered event; ok is false when the
// ring is empty.
func (s *Subscription) Poll() (e Event, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	e = s.ring[s.head]
	s.ring[s.head] = Event{} // release string references
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return e, true
}

// Next blocks until an event is available or the subscription closes; ok
// is false only after Close with an empty ring.
func (s *Subscription) Next() (Event, bool) {
	for {
		if e, ok := s.Poll(); ok {
			return e, true
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			// Drain anything that raced in before the close.
			if e, ok := s.Poll(); ok {
				return e, true
			}
			return Event{}, false
		}
		<-s.notify
	}
}

// Drain appends every currently buffered event to buf and returns it.
func (s *Subscription) Drain(buf []Event) []Event {
	for {
		e, ok := s.Poll()
		if !ok {
			return buf
		}
		buf = append(buf, e)
	}
}

// Len returns the number of buffered events.
func (s *Subscription) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many events were dropped because this subscriber's
// ring was full. It only ever increases.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the bus and wakes a blocked Next.
// Safe to call multiple times.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.bus != nil {
		s.bus.unsubscribe(s)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
