package obsv

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter loaded nonzero")
	}
	g := r.Gauge("y")
	g.Add(1)
	g.Set(9)
	if g.Load() != 0 {
		t.Error("nil gauge loaded nonzero")
	}
	h := r.Histogram("z", LatencyBuckets)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 {
		t.Error("nil histogram counted")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Error("nil registry snapshot not empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name returned different counters")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same name returned different gauges")
	}
	if r.Histogram("a", CountBuckets(4)) != r.Histogram("a", nil) {
		t.Error("same name returned different histograms")
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("inflight")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
	if g.Load() != 0 {
		t.Errorf("gauge = %d, want 0", g.Load())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hops", CountBuckets(8))
	for _, v := range []float64{1, 1, 2, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["hops"]
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	if snap.Sum != 120 {
		t.Errorf("sum = %g, want 120", snap.Sum)
	}
	if got := snap.Buckets[0]; got != 2 { // <= 1
		t.Errorf("bucket <=1 = %d, want 2", got)
	}
	if got := snap.Buckets[2]; got != 3 { // <= 3 exclusive of earlier buckets
		t.Errorf("bucket <=3 = %d, want 3", got)
	}
	if got := snap.Buckets[len(snap.Buckets)-1]; got != 1 { // overflow: 100
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	if q := snap.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %g, want 3", q)
	}
	if q := snap.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %g, want +Inf (overflow sample)", q)
	}
	if m := snap.Mean(); m != 15 {
		t.Errorf("mean = %g, want 15", m)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w%4) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot().Histograms["lat"]
	if snap.Count != 8000 {
		t.Errorf("count = %d, want 8000", snap.Count)
	}
	var inBuckets uint64
	for _, b := range snap.Buckets {
		inBuckets += b
	}
	if inBuckets != 8000 {
		t.Errorf("bucket total = %d, want 8000", inBuckets)
	}
	want := float64(2000*1+2000*2+2000*3) * 0.001
	if math.Abs(snap.Sum-want) > 1e-6 {
		t.Errorf("sum = %g, want %g", snap.Sum, want)
	}
}

// Metric updates are on protocol hot paths: they must not allocate.
func TestInstrumentUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f per op", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { g.Add(1) }); allocs != 0 {
		t.Errorf("Gauge.Add allocates %.1f per op", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op", allocs)
	}
}
