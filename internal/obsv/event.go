// Package obsv is the live observability layer of the multicast runtime:
// a non-blocking pub/sub event bus for protocol events, a metrics registry
// of atomic counters, gauges and fixed-bucket histograms, and a debug HTTP
// handler that exposes both (plus pprof) on a running daemon.
//
// The paper's evaluation measures tree quality and resilience offline; this
// package is what makes the same signals visible on a *live* group: every
// protocol event (join, forward, retry, repair, loss) flows through a Bus
// that any number of consumers can tail without slowing the emitters, and
// every hot-path quantity (RPC round-trip latency, flush batch sizes,
// lookup hop counts, forwarding outcomes) accumulates in a Registry that
// snapshots to JSON in O(metrics), not O(events).
//
// Design rules, in priority order:
//
//  1. The emit path must cost nothing when nobody is watching: one atomic
//     load, no allocation, no lock.
//  2. A slow consumer must never block a protocol goroutine: each
//     subscriber owns a bounded ring; when it is full, new events are
//     dropped for that subscriber only and counted on its drop counter.
//  3. Metric updates are single atomic operations, safe from any
//     goroutine, with snapshots that never stop the writers.
package obsv

import (
	"fmt"
	"time"
)

// Kind classifies a protocol event. The constants below are the canonical
// event vocabulary; internal/trace aliases them for compatibility.
type Kind string

// Event kinds emitted by the runtime.
const (
	KindJoin      Kind = "join"
	KindLeave     Kind = "leave"
	KindDeliver   Kind = "deliver"
	KindForward   Kind = "forward"
	KindDuplicate Kind = "duplicate"
	KindRepair    Kind = "repair"
	KindLookup    Kind = "lookup"
	// KindRetry records one forwarding retry after a failed child send.
	KindRetry Kind = "retry"
	// KindLost records a multicast segment abandoned after retries and
	// repair both failed: the members of that segment did not receive the
	// message from this node.
	KindLost Kind = "lost"
)

// Event is one protocol event published on a Bus.
type Event struct {
	Seq    uint64    `json:"seq"` // bus-wide emission order, starting at 1
	At     time.Time `json:"at"`
	Node   string    `json:"node"` // address of the node the event happened at
	Kind   Kind      `json:"kind"`
	Detail string    `json:"detail"`
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s (%s)", e.At.Format("15:04:05.000"), e.Node, e.Kind, e.Detail)
}
