// Package ids maps member addresses onto the identifier ring.
//
// The paper specifies that member hosts are "randomly mapped by a hash
// function (such as SHA-1) onto an identifier ring [0, N-1]". This package
// implements that mapping, truncating the SHA-1 digest to the ring width,
// and provides salted rehashing so a joining node whose identifier collides
// with an existing member can deterministically derive an alternative.
package ids

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"strconv"

	"camcast/internal/ring"
)

// Hasher maps string addresses to ring identifiers.
type Hasher struct {
	space ring.Space
}

// NewHasher returns a Hasher for the given identifier space.
func NewHasher(space ring.Space) Hasher {
	return Hasher{space: space}
}

// ID hashes addr onto the ring with SHA-1, using the high-order bytes of the
// digest truncated to the ring width.
func (h Hasher) ID(addr string) ring.ID {
	sum := sha1.Sum([]byte(addr))
	v := binary.BigEndian.Uint64(sum[:8])
	// Take the top bits of the digest so that widening the space refines,
	// rather than reshuffles, identifier assignments.
	return v >> (64 - h.space.Bits())
}

// Salted hashes addr with an integer salt appended; salt 0 is identical to
// ID. Joining nodes use increasing salts to resolve identifier collisions.
func (h Hasher) Salted(addr string, salt int) ring.ID {
	if salt == 0 {
		return h.ID(addr)
	}
	return h.ID(addr + "#" + strconv.Itoa(salt))
}

// GeoID implements the paper's Geographic Layout technique (Section 5.2):
// "node identifiers are chosen in a geographically informed manner ... to
// make geographically closeby nodes form clusters in the overlay". The
// identifier's top prefixBits encode the node's cluster; the remaining bits
// come from the salted hash of its address, so nodes of one cluster occupy
// one contiguous arc of the ring. cluster must fit in prefixBits.
func (h Hasher) GeoID(addr string, salt, cluster int, prefixBits uint) (ring.ID, error) {
	if prefixBits == 0 || prefixBits >= h.space.Bits() {
		return 0, fmt.Errorf("ids: prefix bits %d out of (0, %d)", prefixBits, h.space.Bits())
	}
	if cluster < 0 || uint64(cluster) >= uint64(1)<<prefixBits {
		return 0, fmt.Errorf("ids: cluster %d does not fit in %d bits", cluster, prefixBits)
	}
	suffix := h.Salted(addr, salt) & ((uint64(1) << (h.space.Bits() - prefixBits)) - 1)
	return h.space.TopBits(uint64(cluster), prefixBits) | suffix, nil
}

// GeoUnique returns a collision-free geographically laid-out identifier for
// addr, probing successive salts within the node's cluster arc.
func (h Hasher) GeoUnique(addr string, cluster int, prefixBits uint, taken map[ring.ID]bool, maxProbes int) (ring.ID, bool) {
	for s := 0; s < maxProbes; s++ {
		candidate, err := h.GeoID(addr, s, cluster, prefixBits)
		if err != nil {
			return 0, false
		}
		if !taken[candidate] {
			return candidate, true
		}
	}
	return 0, false
}

// Unique returns an identifier for addr that does not appear in taken,
// probing successive salts. The second return value is the salt used.
// It gives up after maxProbes attempts and reports ok = false; with a
// sensibly sized ring (N >> group size) this effectively never happens.
func (h Hasher) Unique(addr string, taken map[ring.ID]bool, maxProbes int) (id ring.ID, salt int, ok bool) {
	for s := 0; s < maxProbes; s++ {
		candidate := h.Salted(addr, s)
		if !taken[candidate] {
			return candidate, s, true
		}
	}
	return 0, 0, false
}
