package ids

import (
	"fmt"
	"testing"

	"camcast/internal/ring"
)

func TestIDDeterministic(t *testing.T) {
	h := NewHasher(ring.MustSpace(19))
	a := h.ID("node-1:4000")
	b := h.ID("node-1:4000")
	if a != b {
		t.Fatalf("hash not deterministic: %d vs %d", a, b)
	}
}

func TestIDWithinSpace(t *testing.T) {
	s := ring.MustSpace(19)
	h := NewHasher(s)
	for i := 0; i < 1000; i++ {
		id := h.Salted("host", i)
		if id > s.Mask() {
			t.Fatalf("id %d exceeds mask %d", id, s.Mask())
		}
	}
}

func TestSaltZeroMatchesID(t *testing.T) {
	h := NewHasher(ring.MustSpace(19))
	if h.Salted("addr", 0) != h.ID("addr") {
		t.Fatal("Salted(addr, 0) should equal ID(addr)")
	}
}

func TestSaltsDiffer(t *testing.T) {
	h := NewHasher(ring.MustSpace(19))
	if h.Salted("addr", 1) == h.Salted("addr", 2) {
		t.Fatal("different salts produced identical identifiers")
	}
}

func TestUniqueAvoidsCollisions(t *testing.T) {
	h := NewHasher(ring.MustSpace(19))
	taken := map[ring.ID]bool{h.ID("addr"): true}
	id, salt, ok := h.Unique("addr", taken, 16)
	if !ok {
		t.Fatal("Unique failed")
	}
	if salt == 0 || taken[id] {
		t.Fatalf("Unique returned colliding id %d (salt %d)", id, salt)
	}
}

func TestUniqueGivesUp(t *testing.T) {
	// A 1-bit space has only two identifiers; mark both taken.
	h := NewHasher(ring.MustSpace(1))
	taken := map[ring.ID]bool{0: true, 1: true}
	if _, _, ok := h.Unique("addr", taken, 8); ok {
		t.Fatal("Unique should fail when all identifiers are taken")
	}
}

// The hash should spread identifiers roughly uniformly: with 4096 addresses
// on a 2^19 ring, each quadrant should hold a reasonable share.
func TestDispersion(t *testing.T) {
	s := ring.MustSpace(19)
	h := NewHasher(s)
	quadrant := make([]int, 4)
	const n = 4096
	for i := 0; i < n; i++ {
		id := h.Salted("member", i)
		quadrant[id/(s.Size()/4)]++
	}
	for q, count := range quadrant {
		if count < n/8 || count > n/2 {
			t.Errorf("quadrant %d holds %d of %d ids; distribution is badly skewed", q, count, n)
		}
	}
}

func TestGeoIDClusterPrefix(t *testing.T) {
	s := ring.MustSpace(16)
	h := NewHasher(s)
	const prefixBits = 3
	for cluster := 0; cluster < 8; cluster++ {
		id, err := h.GeoID("host-x", 0, cluster, prefixBits)
		if err != nil {
			t.Fatal(err)
		}
		if got := id >> (s.Bits() - prefixBits); got != uint64(cluster) {
			t.Fatalf("cluster %d encoded as prefix %d", cluster, got)
		}
	}
}

func TestGeoIDValidation(t *testing.T) {
	h := NewHasher(ring.MustSpace(16))
	if _, err := h.GeoID("a", 0, 0, 0); err == nil {
		t.Error("zero prefix bits should fail")
	}
	if _, err := h.GeoID("a", 0, 0, 16); err == nil {
		t.Error("prefix consuming the whole space should fail")
	}
	if _, err := h.GeoID("a", 0, 8, 3); err == nil {
		t.Error("cluster overflowing the prefix should fail")
	}
	if _, err := h.GeoID("a", 0, -1, 3); err == nil {
		t.Error("negative cluster should fail")
	}
}

func TestGeoUniqueStaysInCluster(t *testing.T) {
	s := ring.MustSpace(16)
	h := NewHasher(s)
	taken := map[ring.ID]bool{}
	const prefixBits = 2
	for i := 0; i < 300; i++ {
		cluster := i % 4
		id, ok := h.GeoUnique(fmt.Sprintf("host-%d", i), cluster, prefixBits, taken, 32)
		if !ok {
			t.Fatal("GeoUnique failed")
		}
		if taken[id] {
			t.Fatal("collision")
		}
		taken[id] = true
		if got := id >> (s.Bits() - prefixBits); got != uint64(cluster) {
			t.Fatalf("id %d escaped cluster %d", id, cluster)
		}
	}
}

func TestGeoUniqueGivesUp(t *testing.T) {
	h := NewHasher(ring.MustSpace(4))
	taken := map[ring.ID]bool{}
	for id := ring.ID(0); id < 16; id++ {
		taken[id] = true
	}
	if _, ok := h.GeoUnique("a", 0, 2, taken, 8); ok {
		t.Error("full arc should fail")
	}
	if _, ok := h.GeoUnique("a", 9, 2, taken, 8); ok {
		t.Error("invalid cluster should fail")
	}
}
