package camcast

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/runtime"
	"camcast/internal/transport"
)

// HostOptions configure a TCPHost's shared transport. The zero value is
// ready to use.
type HostOptions struct {
	// SuspicionWindow tunes the transport's failure detector. Zero keeps
	// the transport default (2s).
	SuspicionWindow time.Duration
	// DialTimeout bounds TCP connection establishment. Zero keeps the
	// transport default (2s).
	DialTimeout time.Duration
	// RPCTimeout bounds each request/response exchange so a hung peer
	// cannot wedge a pooled connection. Zero keeps the transport default
	// (10s).
	RPCTimeout time.Duration
	// Codec selects the wire encoding for payloads this host's members
	// send: "binary" (default) or "gob". Peers decode by tag, so hosts
	// with different codecs interoperate.
	Codec string
	// GroupBacklogLimit bounds, per group and per connection, the bytes
	// of unflushed outbound requests before further sends from that group
	// fail with a backlog error instead of growing the buffer — the
	// write-side isolation that keeps one saturating group from queueing
	// unboundedly ahead of its peers. Zero disables the quota. Responses
	// are exempt so a busy group can always drain inbound work.
	GroupBacklogLimit int
}

// TCPHost is one process's shared TCP footprint: a single listener,
// transport, event bus, and metrics registry hosting up to one member per
// group at the same "host:port" address. All members' traffic — any
// number of groups — multiplexes over one pipelined TCP connection per
// peer pair, with each frame carrying its group's flow label and the
// flush-coalescing writer interleaving groups fairly (weighted round
// robin) when a batch mixes them.
//
// Create with NewTCPHost, add members with Group.ListenOn, and Close when
// done. ListenTCP remains the single-member convenience wrapper.
type TCPHost struct {
	tr  *transport.TCP
	bus *obsv.Bus
	reg *obsv.Registry

	hmu     sync.Mutex            // protects members/closed; "hmu" to keep stack traces distinct from Group.mu
	members map[uint64]*TCPMember // by group flow label
	closed  bool
}

// NewTCPHost starts a TCP transport listening at listenAddr (use
// "127.0.0.1:0" to pick a free port) with no members yet.
func NewTCPHost(listenAddr string, opts HostOptions) (*TCPHost, error) {
	codec, err := transport.ParseCodec(opts.Codec)
	if err != nil {
		return nil, err
	}
	runtime.RegisterWireTypes()
	tr, err := transport.NewTCP(listenAddr)
	if err != nil {
		return nil, err
	}
	tr.Codec = codec
	if opts.SuspicionWindow > 0 {
		tr.SuspicionWindow = opts.SuspicionWindow
	}
	if opts.DialTimeout > 0 {
		tr.DialTimeout = opts.DialTimeout
	}
	if opts.RPCTimeout > 0 {
		tr.RPCTimeout = opts.RPCTimeout
	}
	if opts.GroupBacklogLimit > 0 {
		tr.GroupBacklogLimit = opts.GroupBacklogLimit
	}
	h := &TCPHost{
		tr:      tr,
		bus:     obsv.NewBus(),
		reg:     obsv.NewRegistry(),
		members: make(map[uint64]*TCPMember),
	}
	tr.Instrument(h.reg)
	return h, nil
}

// Addr returns the host's bound "host:port" address. Every member of the
// host shares it; peers reach a specific member by (group, address).
func (h *TCPHost) Addr() string { return h.tr.Addr() }

// Conns returns the number of live TCP connections the host currently
// maintains, counting both dialed and accepted ones. Because every group
// shares the pooled connection to a given peer, this stays at one per
// peer process no matter how many groups the two ends have in common.
func (h *TCPHost) Conns() int { return h.tr.ConnCount() }

// Metrics returns a snapshot of the host's metrics registry: transport
// metrics (including the per-group "transport.group.*" counters) plus
// every hosted member's protocol metrics.
func (h *TCPHost) Metrics() MetricsSnapshot { return h.reg.Snapshot() }

// Groups returns the names of the groups with a member on this host,
// sorted.
func (h *TCPHost) Groups() []string {
	h.hmu.Lock()
	defer h.hmu.Unlock()
	out := make([]string, 0, len(h.members))
	for _, m := range h.members {
		out = append(out, m.group)
	}
	sort.Strings(out)
	return out
}

// DebugHandler returns the host's live debug surface —
// /debug/camcast/{stats,neighbors,events} plus net/http/pprof — covering
// every member, ready to mount on an HTTP server.
func (h *TCPHost) DebugHandler() http.Handler {
	return obsv.Debug{
		Registry: h.reg,
		Bus:      h.bus,
		Neighbors: func() any {
			h.hmu.Lock()
			members := make([]*TCPMember, 0, len(h.members))
			for _, m := range h.members {
				members = append(members, m)
			}
			h.hmu.Unlock()
			out := make([]NeighborInfo, 0, len(members))
			for _, m := range members {
				ni := m.Neighbors()
				if m.gid != transport.DefaultGroup {
					ni.Group = m.group
				}
				out = append(out, ni)
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
			return out
		},
	}.Handler()
}

// Close stops every hosted member abruptly (a crash, as peers see it) and
// releases the transport. Safe to call multiple times.
func (h *TCPHost) Close() {
	h.hmu.Lock()
	if h.closed {
		h.hmu.Unlock()
		return
	}
	h.closed = true
	members := make([]*TCPMember, 0, len(h.members))
	for _, m := range h.members {
		members = append(members, m)
	}
	h.members = make(map[uint64]*TCPMember)
	h.hmu.Unlock()
	for _, m := range members {
		m.node.Stop()
		m.stopObserver()
	}
	h.tr.Close()
}

func (h *TCPHost) remove(gid uint64) {
	h.hmu.Lock()
	defer h.hmu.Unlock()
	delete(h.members, gid)
}

// listenOn starts a member of the given group on this host. Transport
// settings in opts (SuspicionWindow, DialTimeout, RPCTimeout, Codec) are
// ignored here — they were fixed when the host was built.
func (h *TCPHost) listenOn(gid uint64, group, via string, opts Options, owns bool) (*TCPMember, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	h.hmu.Lock()
	if h.closed {
		h.hmu.Unlock()
		return nil, errors.New("camcast: host closed")
	}
	if _, ok := h.members[gid]; ok {
		h.hmu.Unlock()
		return nil, fmt.Errorf("%w: host %s already carries a member of group %q", ErrMemberExists, h.tr.Addr(), group)
	}
	h.hmu.Unlock()

	h.tr.LabelGroup(gid, group)
	addr := h.tr.Addr()
	cfg.OnDeliver = func(d runtime.Delivery) {
		if opts.OnDeliver != nil {
			opts.OnDeliver(Message{ID: d.MsgID, From: d.Source.Addr, Payload: d.Payload, Hops: d.Hops})
		}
	}
	cfg.OnRequest = opts.OnRequest
	cfg.Bus = h.bus
	cfg.Metrics = h.reg

	m := &TCPMember{host: h, gid: gid, group: group, owns: owns, bus: h.bus, reg: h.reg}
	if opts.Observer != nil {
		m.stopObs = observe(h.bus, h.reg, addr, opts.Observer)
	}
	node, err := runtime.NewNode(h.tr.Flow(gid), addr, cfg)
	if err != nil {
		m.stopObserver()
		return nil, err
	}
	m.node = node
	if via == "" {
		err = node.Bootstrap()
	} else {
		err = node.Join(via)
	}
	if err != nil {
		node.Stop()
		m.stopObserver()
		return nil, err
	}

	h.hmu.Lock()
	if h.closed {
		h.hmu.Unlock()
		node.Stop()
		m.stopObserver()
		return nil, errors.New("camcast: host closed")
	}
	if _, ok := h.members[gid]; ok {
		h.hmu.Unlock()
		node.Stop()
		m.stopObserver()
		return nil, fmt.Errorf("%w: host %s already carries a member of group %q", ErrMemberExists, h.tr.Addr(), group)
	}
	h.members[gid] = m
	h.hmu.Unlock()
	return m, nil
}

// ListenOn starts a member of this group on an existing TCPHost,
// multiplexed with the host's other members over the host's listener and
// pooled connections. With via == "" the member bootstraps the group's
// overlay; otherwise it joins through the member of the same group
// listening at via. A host carries at most one member per group.
//
// The member's traffic is tagged with the group's flow label on the
// wire; group identity across processes is the label alone, derived from
// the group name, and the group token is not verified by peers (see
// DESIGN.md §13).
func (g *Group) ListenOn(h *TCPHost, via string, opts Options) (*TCPMember, error) {
	return h.listenOn(g.gid, g.name, via, opts, false)
}

// Listen starts a member of this group on its own dedicated TCPHost at
// listenAddr — NewTCPHost plus ListenOn, with the host's transport
// settings taken from opts and the host closed when the member is. Use
// NewTCPHost + ListenOn to share one host across groups.
func (g *Group) Listen(listenAddr, via string, opts Options) (*TCPMember, error) {
	h, err := NewTCPHost(listenAddr, hostOptions(opts))
	if err != nil {
		return nil, err
	}
	m, err := h.listenOn(g.gid, g.name, via, opts, true)
	if err != nil {
		h.Close()
		return nil, err
	}
	return m, nil
}

// hostOptions lifts the transport-level member options into HostOptions
// for the single-member wrapper paths (ListenTCP, Group.Listen).
func hostOptions(opts Options) HostOptions {
	return HostOptions{
		SuspicionWindow:   opts.SuspicionWindow,
		DialTimeout:       opts.DialTimeout,
		RPCTimeout:        opts.RPCTimeout,
		Codec:             opts.Codec,
		GroupBacklogLimit: opts.GroupBacklogLimit,
	}
}

// ListenTCP starts a member on a real TCP socket at listenAddr (use
// "127.0.0.1:0" to pick a free port). With via == "" the member bootstraps
// a fresh group; otherwise it joins the group through the existing member
// listening at via (a "host:port" string). Options.SuspicionWindow,
// DialTimeout and RPCTimeout tune the transport's failure detection and
// per-RPC deadlines.
//
// ListenTCP is a thin wrapper over NewTCPHost plus a default-group
// ListenOn: the member runs in the default group (flow label 0) on a
// dedicated host that is closed when the member is. Multi-group
// processes create one TCPHost and add a member per group with
// Group.ListenOn instead.
func ListenTCP(listenAddr, via string, opts Options) (*TCPMember, error) {
	h, err := NewTCPHost(listenAddr, hostOptions(opts))
	if err != nil {
		return nil, err
	}
	m, err := h.listenOn(transport.DefaultGroup, "default", via, opts, true)
	if err != nil {
		h.Close()
		return nil, err
	}
	return m, nil
}

// TCPMember is one group member hosted on a TCP transport — a real
// socket, exactly as a separate process or host would run. Create with
// ListenTCP (dedicated transport) or Group.ListenOn (transport shared
// with other groups' members); a TCPMember created by the former owns
// its host and must be Closed when done.
type TCPMember struct {
	node    *runtime.Node
	host    *TCPHost
	gid     uint64
	group   string
	owns    bool // Close/Leave also close the host (ListenTCP, Group.Listen)
	bus     *obsv.Bus
	reg     *obsv.Registry
	stopObs func() // detaches Options.Observer; nil when unset
}

func (m *TCPMember) stopObserver() {
	if m.stopObs != nil {
		m.stopObs()
	}
}

// Addr returns the member's bound "host:port" address — what other members
// of the same group pass as via.
func (m *TCPMember) Addr() string { return m.node.Self().Addr }

// ID returns the member's ring identifier.
func (m *TCPMember) ID() uint64 { return m.node.Self().ID }

// Capacity returns the member's multicast capacity c_x.
func (m *TCPMember) Capacity() int { return m.node.Capacity() }

// Group returns the name of the group the member belongs to ("default"
// for ListenTCP members).
func (m *TCPMember) Group() string { return m.group }

// Host returns the TCPHost carrying this member.
func (m *TCPMember) Host() *TCPHost { return m.host }

// Multicast sends payload to every group member (including this one) and
// returns the message ID.
//
// Deprecated: use MulticastContext. Multicast remains a thin
// background-context wrapper.
func (m *TCPMember) Multicast(payload []byte) (string, error) {
	return m.node.Multicast(payload)
}

// MulticastContext is Multicast under a context: cancellation abandons
// outstanding child sends without counting them as losses.
func (m *TCPMember) MulticastContext(ctx context.Context, payload []byte) (string, error) {
	return m.node.MulticastContext(ctx, payload)
}

// Stats returns a snapshot of the member's protocol counters.
func (m *TCPMember) Stats() Stats { return m.node.Stats() }

// Metrics returns a snapshot of the host's metrics registry, covering
// this member's protocol counters, the TCP transport (RPC latency,
// in-flight calls, flush batch sizes), and any co-hosted members.
func (m *TCPMember) Metrics() MetricsSnapshot { return m.reg.Snapshot() }

// Neighbors reports the member's current ring neighborhood.
func (m *TCPMember) Neighbors() NeighborInfo { return neighborInfo(m.node) }

// Observe attaches fn to this member's live event stream and returns a
// function that detaches it.
func (m *TCPMember) Observe(fn func(Event)) (stop func()) {
	return observe(m.bus, m.reg, m.Addr(), fn)
}

// DebugHandler returns the hosting transport's live debug surface —
// /debug/camcast/{stats,neighbors,events} plus net/http/pprof — ready to
// mount on an HTTP server. For a member on a shared host this covers
// the whole host; see TCPHost.DebugHandler.
func (m *TCPMember) DebugHandler() http.Handler {
	return obsv.Debug{
		Registry:  m.reg,
		Bus:       m.bus,
		Neighbors: func() any { return []NeighborInfo{m.Neighbors()} },
		Extra:     func() any { return m.Stats() },
	}.Handler()
}

// Request sends a unicast request to the member at addr; the remote member
// must have configured Options.OnRequest.
//
// Deprecated: use RequestContext. Request remains a thin
// background-context wrapper.
func (m *TCPMember) Request(addr string, payload []byte) ([]byte, error) {
	return m.node.Request(addr, payload)
}

// RequestContext is Request under a context, which bounds or cancels the
// round-trip.
func (m *TCPMember) RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error) {
	return m.node.RequestContext(ctx, addr, payload)
}

// StabilizeOnce and FixAll drive one maintenance round explicitly, for
// deployments that disabled background maintenance.
func (m *TCPMember) StabilizeOnce() { m.node.StabilizeOnce() }

// FixAll refreshes the member's entire routing table in one pass.
func (m *TCPMember) FixAll() { m.node.FixAll() }

// Leave departs gracefully, detaches from the host, and — for members
// that own their host (ListenTCP, Group.Listen) — releases the transport.
func (m *TCPMember) Leave() error {
	err := m.node.Leave()
	m.stopObserver()
	m.host.remove(m.gid)
	if m.owns {
		m.host.Close()
	}
	return err
}

// Close stops the member abruptly (a crash, as other members see it) and,
// for members that own their host, releases the transport. Safe to call
// multiple times.
func (m *TCPMember) Close() {
	m.node.Stop()
	m.stopObserver()
	m.host.remove(m.gid)
	if m.owns {
		m.host.Close()
	}
}
