// Quickstart: build a small CAM-Chord multicast group with the public API,
// send messages from several members, and show that every member receives
// every message exactly once, no member exceeds its capacity, and the group
// survives a graceful departure.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"camcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	net := camcast.NewNetwork()
	defer net.Close()

	// A shared delivery log (OnDeliver runs on protocol goroutines).
	var (
		mu  sync.Mutex
		log = map[string][]string{} // msgID -> receivers
	)
	record := func(addr string) func(camcast.Message) {
		return func(m camcast.Message) {
			mu.Lock()
			defer mu.Unlock()
			log[m.ID] = append(log[m.ID], fmt.Sprintf("%s(%d hops)", addr, m.Hops))
		}
	}

	// Members with heterogeneous capacities, as the paper assumes: a beefy
	// server can feed six children, a phone only two.
	members := []struct {
		addr     string
		capacity int
	}{
		{"server-1", 6}, {"desktop-1", 4}, {"desktop-2", 4},
		{"laptop-1", 3}, {"laptop-2", 3}, {"phone-1", 2},
		{"phone-2", 2}, {"phone-3", 2},
	}

	opts := func(addr string, capacity int) camcast.Options {
		return camcast.Options{
			Protocol:  camcast.CAMChord,
			Capacity:  capacity,
			Stabilize: -1, // drive maintenance explicitly for a deterministic demo
			Fix:       -1,
			OnDeliver: record(addr),
		}
	}

	// First member bootstraps the group; the rest join through it.
	first := members[0]
	if _, err := net.Create(first.addr, opts(first.addr, first.capacity)); err != nil {
		return err
	}
	for _, m := range members[1:] {
		if _, err := net.Join(m.addr, first.addr, opts(m.addr, m.capacity)); err != nil {
			return err
		}
		net.Settle(1)
	}
	net.Settle(3)
	fmt.Printf("group formed: %d members\n\n", len(net.Members()))

	// Any-source multicast: three different members send.
	for _, sender := range []string{"server-1", "phone-3", "laptop-2"} {
		m, err := net.Member(sender)
		if err != nil {
			return err
		}
		msgID, err := m.MulticastContext(context.Background(), []byte("hello from "+sender))
		if err != nil {
			return err
		}
		mu.Lock()
		receivers := append([]string(nil), log[msgID]...)
		mu.Unlock()
		sort.Strings(receivers)
		fmt.Printf("%s multicast %s -> %d/%d members\n  %v\n",
			sender, msgID, len(receivers), len(members), receivers)
		if len(receivers) != len(members) {
			return fmt.Errorf("message %s missed members", msgID)
		}
	}

	// Capacity bound: no member forwarded more copies per message than its
	// capacity allows.
	fmt.Println("\nper-member forwarding totals over 3 messages (capacity bound):")
	for _, m := range members {
		member, err := net.Member(m.addr)
		if err != nil {
			return err
		}
		st := member.Stats()
		fmt.Printf("  %-10s capacity=%d forwarded=%d (max allowed %d)\n",
			m.addr, m.capacity, st.Forwarded, 3*m.capacity)
		if st.Forwarded > uint64(3*m.capacity) {
			return fmt.Errorf("%s exceeded its capacity", m.addr)
		}
	}

	// Dynamic membership: a member leaves, the group keeps working.
	leaver, err := net.Member("desktop-2")
	if err != nil {
		return err
	}
	if err := leaver.Leave(); err != nil {
		return err
	}
	net.Settle(3)
	m, err := net.Member("phone-1")
	if err != nil {
		return err
	}
	msgID, err := m.MulticastContext(context.Background(), []byte("after departure"))
	if err != nil {
		return err
	}
	mu.Lock()
	n := len(log[msgID])
	mu.Unlock()
	fmt.Printf("\nafter desktop-2 left: multicast reached %d/%d remaining members\n", n, len(members)-1)
	if n != len(members)-1 {
		return fmt.Errorf("post-departure message missed members")
	}
	return nil
}
