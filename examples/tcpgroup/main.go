// Tcpgroup: the same protocol over real TCP sockets. Each member gets its
// own TCP transport (its own listener on 127.0.0.1), exactly as separate
// processes or hosts would, and joins the group by dialing the first
// member's host:port. Demonstrates that the runtime is transport-agnostic:
// everything the other examples do in-process works across the network.
//
// Run with: go run ./examples/tcpgroup
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"camcast/internal/ring"
	"camcast/internal/runtime"
	"camcast/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcpgroup:", err)
		os.Exit(1)
	}
}

func run() error {
	runtime.RegisterWireTypes() // gob payload registration for the TCP codec
	space := ring.MustSpace(24)

	var (
		mu        sync.Mutex
		delivered = map[string]int{} // listen address -> hops
	)

	const groupSize = 5
	var (
		transports []*transport.TCP
		nodes      []*runtime.Node
	)
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, tr := range transports {
			tr.Close()
		}
	}()

	for i := 0; i < groupSize; i++ {
		tr, err := transport.NewTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		transports = append(transports, tr)
		addr := tr.Addr()
		node, err := runtime.NewNode(tr, addr, runtime.Config{
			Space:    space,
			Mode:     runtime.ModeCAMChord,
			Capacity: 3,
			OnDeliver: func(d runtime.Delivery) {
				mu.Lock()
				defer mu.Unlock()
				delivered[addr] = d.Hops
			},
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, node)

		if i == 0 {
			if err := node.Bootstrap(); err != nil {
				return err
			}
			fmt.Printf("bootstrapped %s (id %d)\n", addr, node.Self().ID)
			continue
		}
		if err := node.Join(transports[0].Addr()); err != nil {
			return err
		}
		fmt.Printf("joined       %s (id %d) via %s\n", addr, node.Self().ID, transports[0].Addr())
		for r := 0; r < 2; r++ {
			for _, n := range nodes {
				n.StabilizeOnce()
			}
		}
	}

	// Converge tables, then multicast from the last member.
	for r := 0; r < 3; r++ {
		for _, n := range nodes {
			n.StabilizeOnce()
		}
		for _, n := range nodes {
			n.FixAll()
		}
	}
	src := nodes[groupSize-1]
	msgID, err := src.MulticastContext(context.Background(), []byte("hello over TCP"))
	if err != nil {
		return err
	}

	mu.Lock()
	defer mu.Unlock()
	addrs := make([]string, 0, len(delivered))
	for a := range delivered {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	fmt.Printf("\nmulticast %s from %s reached %d/%d members over real sockets:\n",
		msgID, src.Self().Addr, len(delivered), groupSize)
	for _, a := range addrs {
		fmt.Printf("  %s (%d hops)\n", a, delivered[a])
	}
	if len(delivered) != groupSize {
		return fmt.Errorf("message missed members")
	}
	return nil
}
