// Chatroom: any-source multicast with dynamic membership on the live
// runtime. Members join mid-session, chat, and leave — with background
// stabilization running, exactly as a deployed group would. CAM-Koorde is
// used here: the paper recommends it when membership changes frequently.
//
// Run with: go run ./examples/chatroom
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"camcast"
)

type chatLog struct {
	mu       sync.Mutex
	received map[string]map[string]string // member -> msgID -> text
}

func newChatLog() *chatLog {
	return &chatLog{received: make(map[string]map[string]string)}
}

func (l *chatLog) handler(member string) func(camcast.Message) {
	return func(m camcast.Message) {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.received[member] == nil {
			l.received[member] = make(map[string]string)
		}
		l.received[member][m.ID] = fmt.Sprintf("%s: %s", m.From, m.Payload)
	}
}

func (l *chatLog) whoGot(msgID string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for member, msgs := range l.received {
		if _, ok := msgs[msgID]; ok {
			out = append(out, member)
		}
	}
	sort.Strings(out)
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chatroom:", err)
		os.Exit(1)
	}
}

func run() error {
	net := camcast.NewNetwork()
	defer net.Close()
	log := newChatLog()

	opts := func(member string) camcast.Options {
		return camcast.Options{
			Protocol:  camcast.CAMKoorde,
			Capacity:  5,
			Stabilize: 2 * time.Millisecond, // real background maintenance
			Fix:       2 * time.Millisecond,
			OnDeliver: log.handler(member),
		}
	}

	say := func(member, text string) (string, error) {
		m, err := net.Member(member)
		if err != nil {
			return "", err
		}
		return m.MulticastContext(context.Background(), []byte(text))
	}

	// waitFor polls until msgID reached want members (maintenance is
	// asynchronous, so stale tables may delay full coverage briefly).
	waitFor := func(msgID string, want int) []string {
		deadline := time.Now().Add(3 * time.Second)
		for {
			got := log.whoGot(msgID)
			if len(got) >= want || time.Now().After(deadline) {
				return got
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// settle waits until a probe message reaches the whole current group.
	settle := func(from string) error {
		deadline := time.Now().Add(5 * time.Second)
		for {
			id, err := say(from, "(probe)")
			if err != nil {
				return err
			}
			if got := waitFor(id, len(net.Members())); len(got) == len(net.Members()) {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("group never converged")
			}
		}
	}

	if _, err := net.Create("alice", opts("alice")); err != nil {
		return err
	}
	for _, member := range []string{"bob", "carol", "dave"} {
		if _, err := net.Join(member, "alice", opts(member)); err != nil {
			return err
		}
	}
	if err := settle("alice"); err != nil {
		return err
	}
	fmt.Println("room open:", len(net.Members()), "members")

	id, err := say("alice", "hi everyone!")
	if err != nil {
		return err
	}
	fmt.Printf("alice said hi     -> %v\n", waitFor(id, 4))

	id, err = say("dave", "hey alice")
	if err != nil {
		return err
	}
	fmt.Printf("dave replied      -> %v\n", waitFor(id, 4))

	// Two more members join mid-conversation.
	for _, member := range []string{"erin", "frank"} {
		if _, err := net.Join(member, "bob", opts(member)); err != nil {
			return err
		}
	}
	if err := settle("bob"); err != nil {
		return err
	}
	fmt.Println("erin and frank joined:", len(net.Members()), "members")

	id, err = say("erin", "what did I miss?")
	if err != nil {
		return err
	}
	fmt.Printf("erin asked        -> %v\n", waitFor(id, 6))

	// Carol leaves gracefully; chat continues.
	carol, err := net.Member("carol")
	if err != nil {
		return err
	}
	if err := carol.Leave(); err != nil {
		return err
	}
	if err := settle("alice"); err != nil {
		return err
	}
	id, err = say("frank", "bye carol")
	if err != nil {
		return err
	}
	fmt.Printf("carol left; frank -> %v\n", waitFor(id, 5))
	return nil
}
