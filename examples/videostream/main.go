// Videostream: the paper's motivating workload. A 20,000-member group wants
// to stream video from any member; upload bandwidths are heterogeneous
// (U[400,1000] kbps). This example uses the large-scale simulator to compare
// the sustainable streaming rate of capacity-aware CAM-Chord against a
// capacity-unaware Chord overlay at the same average degree, and shows the
// throughput/latency dial the per-link target p provides.
//
// Run with: go run ./examples/videostream
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"camcast/internal/camchord"
	"camcast/internal/experiments"
	"camcast/internal/ring"
	"camcast/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "videostream:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		groupSize = 20000
		bits      = 17 // keeps the paper's node density at this scale
		seed      = 7
	)
	wcfg := workload.DefaultConfig(groupSize, seed)
	wcfg.Space = ring.MustSpace(bits)
	pop, err := experiments.NewPopulation(wcfg)
	if err != nil {
		return err
	}
	sources := experiments.PickSources(pop.Ring.Len(), 3, seed)

	fmt.Printf("streaming group: %d members, upload bandwidth %d..%d kbps\n\n",
		groupSize, workload.DefaultBandwidthLo, workload.DefaultBandwidthHi)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "per-link target p\tsystem\tsustainable rate\tavg latency\tmax depth")
	fmt.Fprintln(w, "(kbps)\t\t(kbps)\t(hops)\t(hops)")

	// Sweep the throughput/latency dial: small p = many children = lower
	// rate but shallower trees.
	for _, p := range []float64{175, 100, 50} {
		caps := pop.CapsFromBandwidth(p, camchord.MinCapacity)
		cam, err := experiments.NewOverlay(experiments.SystemCAMChord, pop, caps, 0)
		if err != nil {
			return err
		}
		camStats, err := experiments.MeasureTrees(cam, pop.Bandwidth, caps, sources)
		if err != nil {
			return err
		}

		// The capacity-unaware competitor at the same average degree.
		avgDegree := int(workload.AverageCapacity(toMembers(caps)) + 0.5)
		base, err := experiments.NewOverlay(experiments.SystemChord, pop, nil, avgDegree)
		if err != nil {
			return err
		}
		baseStats, err := experiments.MeasureTrees(base, pop.Bandwidth, pop.UniformCaps(avgDegree), sources)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "%.0f\tCAM-Chord\t%.1f\t%.2f\t%.0f\n",
			p, camStats.Throughput, camStats.AvgPathLength, camStats.MaxDepth)
		fmt.Fprintf(w, "\tChord (uniform %d children)\t%.1f\t%.2f\t%.0f\n",
			avgDegree, baseStats.Throughput, baseStats.AvgPathLength, baseStats.MaxDepth)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nCAM-Chord sustains a higher streaming rate at every setting because")
	fmt.Println("low-bandwidth members are never asked to feed more children than their")
	fmt.Println("uplink supports; smaller p trades rate for shallower trees (lower latency).")
	return nil
}

// toMembers adapts a capacity slice for workload.AverageCapacity.
func toMembers(caps []int) []workload.Member {
	members := make([]workload.Member, len(caps))
	for i, c := range caps {
		members[i].Capacity = c
	}
	return members
}
