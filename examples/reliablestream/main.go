// Reliablestream: lossy-network streaming with the reliability layer. The
// paper motivates capacity-aware multicast with sustained throughput
// "particularly in the case of reliable delivery"; this example streams a
// numbered feed through a CAM-Chord group while the transport drops 30% of
// messages, then lets receivers NACK-repair until every chunk has arrived
// in order.
//
// Run with: go run ./examples/reliablestream
package main

import (
	"fmt"
	"os"
	"sync"

	"camcast"
	"camcast/reliable"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reliablestream:", err)
		os.Exit(1)
	}
}

func run() error {
	net := camcast.NewNetwork()
	defer net.Close()

	var (
		mu       sync.Mutex
		received = map[string][]uint64{}
		gaps     = map[string][]uint64{}
	)
	cfg := func(member string) reliable.Config {
		return reliable.Config{
			Window: 64,
			OnData: func(src string, seq uint64, payload []byte) {
				mu.Lock()
				defer mu.Unlock()
				received[member] = append(received[member], seq)
			},
			OnGap: func(src string, seq uint64) {
				mu.Lock()
				defer mu.Unlock()
				gaps[member] = append(gaps[member], seq)
			},
		}
	}
	opts := func() camcast.Options {
		return camcast.Options{Capacity: 4, Stabilize: -1, Fix: -1}
	}

	// One streamer, five subscribers.
	streamer, err := reliable.New(net, "streamer", "", opts(), reliable.Config{})
	if err != nil {
		return err
	}
	members := []string{"sub-1", "sub-2", "sub-3", "sub-4", "sub-5"}
	sessions := make([]*reliable.Session, len(members))
	for i, m := range members {
		if sessions[i], err = reliable.New(net, m, "streamer", opts(), cfg(m)); err != nil {
			return err
		}
		net.Settle(1)
	}
	net.Settle(3)

	// Stream 40 chunks while the network drops 30% of all packets: entire
	// multicast subtrees vanish.
	const chunks = 40
	net.Transport().SetDropRate(0.30)
	for i := 1; i <= chunks; i++ {
		if _, err := streamer.Send([]byte(fmt.Sprintf("chunk-%03d", i))); err != nil {
			return err
		}
	}
	net.Transport().SetDropRate(0)

	mu.Lock()
	fmt.Println("after the lossy phase (30% drop rate):")
	for _, m := range members {
		fmt.Printf("  %s received %2d/%d chunks\n", m, len(received[m]), chunks)
	}
	mu.Unlock()

	// The streamer announces its high-water mark; subscribers NACK-repair.
	for round := 0; round < 8; round++ {
		if err := streamer.Sync(); err != nil {
			return err
		}
		for _, s := range sessions {
			s.Heal()
		}
		mu.Lock()
		done := true
		for _, m := range members {
			if len(received[m]) != chunks {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
	}

	fmt.Println("\nafter sync + NACK repair:")
	mu.Lock()
	defer mu.Unlock()
	for _, m := range members {
		seqs := received[m]
		inOrder := true
		for i, seq := range seqs {
			if seq != uint64(i+1) {
				inOrder = false
			}
		}
		fmt.Printf("  %s received %2d/%d chunks, in order: %v, unrecoverable: %d\n",
			m, len(seqs), chunks, inOrder, len(gaps[m]))
		if len(seqs) != chunks || !inOrder {
			return fmt.Errorf("%s did not recover the full ordered stream", m)
		}
	}
	return nil
}
