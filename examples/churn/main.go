// Churn: resilience of the two CAM systems. Part 1 reproduces the paper's
// qualitative claim (Sections 2 and 7) at simulator scale: after mass
// failure with no repair, CAM-Koorde's flooding mesh keeps delivering where
// CAM-Chord's single tree path breaks, and its advantage grows with node
// capacity. Part 2 shows the live runtime healing through successor lists
// while members crash without notice.
//
// Run with: go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"camcast"
	"camcast/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := staticResilience(); err != nil {
		return err
	}
	fmt.Println()
	return liveCrashRecovery()
}

// staticResilience reruns the mass-failure ablation at a 10,000-member
// scale and prints the survival table.
func staticResilience() error {
	fmt.Println("== delivery after mass failure, no repair (10,000 members) ==")
	res, err := experiments.AblationResilience(experiments.Config{
		N: 10000, Sources: 1, Seed: 11, Bits: 16,
	})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "failed fraction")
	for _, s := range res.Series {
		fmt.Fprintf(w, "\t%s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range res.Series[0].Points {
		fmt.Fprintf(w, "%.0f%%", res.Series[0].Points[i].X*100)
		for _, s := range res.Series {
			fmt.Fprintf(w, "\t%.1f%%", s.Points[i].Y*100)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// liveCrashRecovery crashes members of a live group and shows multicast
// recovering as stabilization repairs the ring.
func liveCrashRecovery() error {
	fmt.Println("== live crash recovery (CAM-Chord runtime, 20 members) ==")
	net := camcast.NewNetwork()
	defer net.Close()

	delivered := make(chan string, 1024)
	opts := func(member string) camcast.Options {
		return camcast.Options{
			Capacity:  4,
			Stabilize: -1, // deterministic demo: repair rounds are explicit
			Fix:       -1,
			OnDeliver: func(m camcast.Message) { delivered <- member },
		}
	}

	if _, err := net.Create("m0", opts("m0")); err != nil {
		return err
	}
	for i := 1; i < 20; i++ {
		addr := fmt.Sprintf("m%d", i)
		if _, err := net.Join(addr, "m0", opts(addr)); err != nil {
			return err
		}
		net.Settle(1)
	}
	net.Settle(3)

	count := func(msgErr error) int {
		if msgErr != nil {
			return -1
		}
		n := 0
		for {
			select {
			case <-delivered:
				n++
			case <-time.After(20 * time.Millisecond):
				return n
			}
		}
	}

	src, err := net.Member("m3")
	if err != nil {
		return err
	}
	_, err = src.MulticastContext(context.Background(), []byte("before crash"))
	fmt.Printf("before crashes:            %d/20 members reached\n", count(err))

	// Five members crash without any notification.
	for _, addr := range []string{"m5", "m9", "m12", "m15", "m18"} {
		m, err := net.Member(addr)
		if err != nil {
			return err
		}
		m.Crash()
	}
	_, err = src.MulticastContext(context.Background(), []byte("right after crash"))
	fmt.Printf("immediately after 5 crash: %d/15 survivors reached (stale tables)\n", count(err))

	// Repair: stabilization prunes dead successors, table refresh re-routes.
	net.Settle(4)
	_, err = src.MulticastContext(context.Background(), []byte("after repair"))
	fmt.Printf("after repair rounds:       %d/15 survivors reached\n", count(err))
	return nil
}
