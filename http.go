package camcast

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"camcast/internal/obsv"
)

// DebugHandler returns the network's live debug surface ready to mount on
// an HTTP server: /debug/camcast/{stats,neighbors,events} plus
// net/http/pprof as before, and the group control plane under
// /debug/camcast/groups. cmd/camnode's -debug-addr flag serves exactly
// this.
//
// The control plane mirrors the programmatic lifecycle:
//
//	GET  /debug/camcast/groups                  list group summaries
//	POST /debug/camcast/groups                  create (form: name, token)
//	GET  /debug/camcast/groups/{name}           describe (query: token)
//	POST /debug/camcast/groups/{name}/join      add an in-process member
//	                                            (form: addr, via, token,
//	                                            capacity, protocol)
//	POST /debug/camcast/groups/{name}/leave     remove a member (form: addr, token)
//
// Protected groups require their token on describe, join, and leave; the
// listing shows only summaries (no member addresses) and is open. join
// with an empty via bootstraps the group's overlay.
func (n *Network) DebugHandler() http.Handler {
	inner := obsv.Debug{
		Registry:  n.reg,
		Bus:       n.bus,
		Neighbors: func() any { return n.Neighbors() },
		Extra:     func() any { return n.CountersSnapshot() },
	}.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.HandleFunc("/debug/camcast/groups", n.serveGroups)
	mux.HandleFunc("/debug/camcast/groups/", n.serveGroupOp)
	return mux
}

func (n *Network) serveGroups(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		httpJSON(w, http.StatusOK, n.Groups())
	case http.MethodPost:
		name := r.FormValue("name")
		g, err := n.CreateGroup(name, GroupOptions{Token: r.FormValue("token")})
		if err != nil {
			httpError(w, err)
			return
		}
		httpJSON(w, http.StatusCreated, g.summary())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveGroupOp routes /debug/camcast/groups/{name}[/join|/leave]. Every
// operation below the listing authenticates with the group's token, so
// the lookup goes through JoinGroup — the same capability check the
// programmatic API applies.
func (n *Network) serveGroupOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/debug/camcast/groups/")
	name, op, _ := strings.Cut(rest, "/")
	if name == "" {
		http.Error(w, "missing group name", http.StatusBadRequest)
		return
	}
	g, err := n.JoinGroup(name, r.FormValue("token"))
	if err != nil {
		httpError(w, err)
		return
	}
	switch {
	case op == "" && r.Method == http.MethodGet:
		httpJSON(w, http.StatusOK, g.Describe())
	case op == "join" && r.Method == http.MethodPost:
		n.serveJoin(w, r, g)
	case op == "leave" && r.Method == http.MethodPost:
		m, err := g.Member(r.FormValue("addr"))
		if err != nil {
			httpError(w, err)
			return
		}
		if err := m.Leave(); err != nil {
			httpError(w, err)
			return
		}
		httpJSON(w, http.StatusOK, g.summary())
	default:
		http.Error(w, "unknown group operation", http.StatusNotFound)
	}
}

func (n *Network) serveJoin(w http.ResponseWriter, r *http.Request, g *Group) {
	var opts Options
	if s := r.FormValue("capacity"); s != "" {
		c, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad capacity: "+err.Error(), http.StatusBadRequest)
			return
		}
		opts.Capacity = c
	}
	switch r.FormValue("protocol") {
	case "", "chord":
		opts.Protocol = CAMChord
	case "koorde":
		opts.Protocol = CAMKoorde
	default:
		http.Error(w, "unknown protocol (want chord or koorde)", http.StatusBadRequest)
		return
	}
	addr := r.FormValue("addr")
	if addr == "" {
		http.Error(w, "missing member addr", http.StatusBadRequest)
		return
	}
	var m *Member
	var err error
	if via := r.FormValue("via"); via == "" {
		m, err = g.Create(addr, opts)
	} else {
		m, err = g.Join(addr, via, opts)
	}
	if err != nil {
		httpError(w, err)
		return
	}
	httpJSON(w, http.StatusCreated, struct {
		Addr     string `json:"addr"`
		ID       uint64 `json:"id"`
		Capacity int    `json:"capacity"`
		Group    string `json:"group"`
	}{m.Addr(), m.ID(), m.Capacity(), m.Group()})
}

// httpError maps the control plane's sentinel errors onto HTTP statuses.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoSuchGroup), errors.Is(err, ErrNoSuchMember):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadToken):
		status = http.StatusForbidden
	case errors.Is(err, ErrGroupExists), errors.Is(err, ErrMemberExists):
		status = http.StatusConflict
	}
	http.Error(w, err.Error(), status)
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
