package camcast_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite testdata/api.txt from the current exported surface")

// TestAPISurface snapshots every exported identifier of the root camcast
// package into testdata/api.txt. An unreviewed addition, removal, or
// signature-shape change fails here first; intentional changes are
// recorded with `go test -run TestAPISurface -update .` and reviewed as
// part of the diff. Built on go/parser alone so it runs offline.
func TestAPISurface(t *testing.T) {
	got := strings.Join(exportedSurface(t, "."), "\n") + "\n"
	const golden = "testdata/api.txt"
	if *updateAPI {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record the surface)", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface drifted from %s:\n%s\nIf the change is intentional, rerun with -update and commit the new snapshot.", golden, surfaceDiff(string(want), got))
	}
}

// exportedSurface parses the package in dir (tests excluded) and returns
// one sorted line per exported identifier: package-level funcs, methods
// (receiver-qualified), types with their exported fields, consts and vars.
func exportedSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declSurface(decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func declSurface(decl ast.Decl) []string {
	var lines []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := typeString(d.Recv.List[0].Type)
			if !ast.IsExported(strings.TrimPrefix(recv, "*")) {
				return nil
			}
			lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, funcSig(d.Type)))
		} else {
			lines = append(lines, "func "+d.Name.Name+funcSig(d.Type))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				lines = append(lines, typeSurface(s)...)
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, n := range s.Names {
					if n.IsExported() {
						lines = append(lines, kind+" "+n.Name)
					}
				}
			}
		}
	}
	return lines
}

func typeSurface(s *ast.TypeSpec) []string {
	lines := []string{"type " + s.Name.Name + " " + typeKind(s.Type)}
	switch typ := s.Type.(type) {
	case *ast.StructType:
		for _, f := range typ.Fields.List {
			for _, n := range f.Names {
				if n.IsExported() {
					lines = append(lines, fmt.Sprintf("field %s.%s %s", s.Name.Name, n.Name, typeString(f.Type)))
				}
			}
			if len(f.Names) == 0 { // embedded
				emb := typeString(f.Type)
				if ast.IsExported(strings.TrimPrefix(emb, "*")) {
					lines = append(lines, fmt.Sprintf("field %s.%s (embedded)", s.Name.Name, emb))
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range typ.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						lines = append(lines, fmt.Sprintf("ifacemethod %s.%s%s", s.Name.Name, n.Name, funcSig(ft)))
					}
				}
			}
		}
	}
	return lines
}

func typeKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.StructType:
		return "struct"
	case *ast.InterfaceType:
		return "interface"
	case *ast.FuncType:
		return "func"
	default:
		return "= " + typeString(e)
	}
}

func funcSig(ft *ast.FuncType) string {
	return "(" + fieldTypes(ft.Params) + ")" + funcResults(ft)
}

func funcResults(ft *ast.FuncType) string {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return ""
	}
	out := fieldTypes(ft.Results)
	if len(ft.Results.List) == 1 && len(ft.Results.List[0].Names) == 0 {
		return " " + out
	}
	return " (" + out + ")"
}

func fieldTypes(fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		typ := typeString(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, typ)
		}
	}
	return strings.Join(parts, ", ")
}

// typeString renders a type expression compactly. It covers the shapes the
// camcast surface actually uses; anything novel renders as ? so the
// snapshot still changes (and the test still catches the drift).
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.ArrayType:
		if t.Len == nil {
			return "[]" + typeString(t.Elt)
		}
		return "[n]" + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.FuncType:
		return "func" + funcSig(t)
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	case *ast.ChanType:
		return "chan " + typeString(t.Value)
	case *ast.InterfaceType:
		return "interface{}"
	default:
		return "?"
	}
}

// surfaceDiff renders a set-style diff of snapshot lines — enough to see
// what appeared or vanished without a diff library.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var missing, extra []string
	for l := range wantSet {
		if !gotSet[l] {
			missing = append(missing, "- "+l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			extra = append(extra, "+ "+l)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return strings.Join(append(missing, extra...), "\n")
}
