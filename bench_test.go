package camcast

// Benchmark harness: one benchmark per figure in the paper's evaluation
// (Section 6), the ablation benches DESIGN.md calls out, micro benchmarks of
// the core operations, and engine benches isolating the parallel experiment
// engine (sequential sweep vs worker pool, fresh tree builds vs in-place
// rebuilds).
//
// The figure benches run the same experiment code as cmd/camfigs — each
// figure executes as a flat grid of points on the engine's worker pool, over
// process-cached populations and memoized overlays — but scaled to
// bench-friendly sizes with the paper's node density (n/2^bits ≈ 0.19)
// preserved; ReportMetric surfaces the headline quantity of each figure so
// `go test -bench=.` output is directly comparable to the paper. After the
// first iteration these benches regenerate over warm caches; the
// FigureSweep benches below reset the caches every iteration to time the
// cold end-to-end sweep. Regenerate the full-scale series with
// `go run ./cmd/camfigs`.

import (
	"fmt"
	"testing"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/experiments"
	"camcast/internal/multicast"
	"camcast/internal/ring"
	"camcast/internal/workload"
)

// benchConfig preserves the paper's node density at bench scale.
func benchConfig() experiments.Config {
	return experiments.Config{N: 3000, Sources: 1, Seed: 1, Bits: 14}
}

func benchPopulation(b *testing.B) *experiments.Population {
	b.Helper()
	cfg := workload.DefaultConfig(3000, 1)
	cfg.Space = ring.MustSpace(14)
	pop, err := experiments.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return pop
}

// BenchmarkFigure6Throughput regenerates Figure 6 (throughput vs average
// children, all four systems) and reports the CAM-Chord over Chord
// throughput ratio at 10 children — the paper's "70-80% improvement" claim.
func BenchmarkFigure6Throughput(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var camY, chordY float64
		for _, s := range res.Series {
			for _, p := range s.Points {
				if p.X == 10 {
					switch s.Label {
					case string(experiments.SystemCAMChord):
						camY = p.Y
					case string(experiments.SystemChord):
						chordY = p.Y
					}
				}
			}
		}
		ratio = camY / chordY
	}
	b.ReportMetric(ratio, "throughput-ratio@10children")
}

// BenchmarkFigure7Heterogeneity regenerates Figure 7 and reports the
// CAM-Chord/Chord ratio at the widest bandwidth range [400,1600].
func BenchmarkFigure7Heterogeneity(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pts := res.Series[0].Points
		ratio = pts[len(pts)-1].Y
	}
	b.ReportMetric(ratio, "ratio@b=1600")
}

// BenchmarkFigure8Tradeoff regenerates Figure 8 and reports CAM-Chord's
// average path length at the highest-throughput point.
func BenchmarkFigure8Tradeoff(b *testing.B) {
	var pathLen float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pathLen = res.Series[0].Points[0].Y
	}
	b.ReportMetric(pathLen, "hops@max-throughput")
}

// BenchmarkFigure9Distribution regenerates Figure 9 (CAM-Chord path length
// distributions) and reports the histogram peak for the default [4..10]
// capacity range.
func BenchmarkFigure9Distribution(b *testing.B) {
	benchDistribution(b, experiments.Figure9)
}

// BenchmarkFigure10Distribution regenerates Figure 10 (CAM-Koorde).
func BenchmarkFigure10Distribution(b *testing.B) {
	benchDistribution(b, experiments.Figure10)
}

func benchDistribution(b *testing.B, fig func(experiments.Config) (experiments.FigureResult, error)) {
	b.Helper()
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := fig(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Label != "[4..10]" {
				continue
			}
			for _, p := range s.Points {
				if p.Y > peak {
					peak = p.X
				}
			}
		}
	}
	b.ReportMetric(peak, "peak-hops[4..10]")
}

// BenchmarkFigure11PathLength regenerates Figure 11 and reports CAM-Chord's
// average path length at capacity 10 against the 1.5·ln(n)/ln(c) bound.
func BenchmarkFigure11PathLength(b *testing.B) {
	var hops float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Series[0].Points {
			if p.X == 10 {
				hops = p.Y
			}
		}
	}
	b.ReportMetric(hops, "hops@c=10")
}

// Ablation benches (see DESIGN.md).

func BenchmarkAblationKoordeShift(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationShift(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		spread, clustered := res.Series[0].Points, res.Series[1].Points
		gap = 0
		for j := range spread {
			gap += clustered[j].Y - spread[j].Y
		}
		gap /= float64(len(spread))
	}
	b.ReportMetric(gap, "hops-saved-by-right-shift")
}

func BenchmarkAblationChordSpacing(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSpacing(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		even, contiguous := res.Series[0].Points, res.Series[1].Points
		gap = 0
		for j := range even {
			gap += contiguous[j].Y - even[j].Y
		}
		gap /= float64(len(even))
	}
	b.ReportMetric(gap, "hops-saved-by-even-spacing")
}

func BenchmarkAblationLoadSpread(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationLoadSpread(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		perSource, shared := res.Series[0].Points, res.Series[1].Points
		last := len(perSource) - 1
		factor = shared[last].Y / perSource[last].Y
	}
	b.ReportMetric(factor, "load-spread-factor@32sources")
}

func BenchmarkAblationResilience(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationResilience(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ratios := map[string]float64{}
		for _, s := range res.Series {
			var sum float64
			for _, p := range s.Points {
				sum += p.Y
			}
			ratios[s.Label] = sum / float64(len(s.Points))
		}
		gap = ratios["CAM-Koorde c=16"] - ratios["CAM-Chord c=16"]
	}
	b.ReportMetric(gap, "koorde-survival-advantage@c=16")
}

// Engine benches: the full Figure 6 sweep (44 grid points over one
// population) with cold caches every iteration, sequential vs one worker per
// CPU. On a multi-core machine the parallel variant's speedup is roughly the
// core count (the points are embarrassingly parallel); the outputs are
// byte-identical either way (see TestParallelismByteIdenticalTSV).

func BenchmarkFigureSweepSequential(b *testing.B) { benchFigureSweep(b, 1) }
func BenchmarkFigureSweepParallel(b *testing.B)   { benchFigureSweep(b, 0) }

func benchFigureSweep(b *testing.B, parallelism int) {
	b.Helper()
	cfg := benchConfig()
	cfg.Parallelism = parallelism
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		if _, err := experiments.Figure6(cfg); err != nil {
			b.Fatal(err)
		}
	}
	experiments.ResetCaches()
}

// Micro benchmarks of the core operations. The TreeBuild/TreeBuildInto
// pairs contrast a fresh tree allocation per source against the engine's
// in-place rebuild (Tree.Reset): steady-state allocs/op drops ~40× for the
// Into variants (the residue is children-slice growth at nodes that were
// leaves in every earlier source's tree).

func BenchmarkCAMChordTreeBuild(b *testing.B) {
	pop := benchPopulation(b)
	net, err := camchord.New(pop.Ring, pop.Caps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := net.BuildTree(i % pop.Ring.Len())
		if err != nil {
			b.Fatal(err)
		}
		if tree.Reached() != pop.Ring.Len() {
			b.Fatal("incomplete tree")
		}
	}
}

func BenchmarkCAMChordTreeBuildInto(b *testing.B) {
	pop := benchPopulation(b)
	net, err := camchord.New(pop.Ring, pop.Caps)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multicast.NewTree(pop.Ring.Len(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.BuildTreeInto(tree, i%pop.Ring.Len()); err != nil {
			b.Fatal(err)
		}
		if tree.Reached() != pop.Ring.Len() {
			b.Fatal("incomplete tree")
		}
	}
}

func BenchmarkCAMKoordeTreeBuild(b *testing.B) {
	pop := benchPopulation(b)
	net, err := camkoorde.New(pop.Ring, pop.Caps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, _, err := net.BuildTree(i % pop.Ring.Len())
		if err != nil {
			b.Fatal(err)
		}
		if tree.Reached() != pop.Ring.Len() {
			b.Fatal("incomplete tree")
		}
	}
}

func BenchmarkCAMKoordeTreeBuildInto(b *testing.B) {
	pop := benchPopulation(b)
	net, err := camkoorde.New(pop.Ring, pop.Caps)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multicast.NewTree(pop.Ring.Len(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.BuildTreeInto(tree, i%pop.Ring.Len()); err != nil {
			b.Fatal(err)
		}
		if tree.Reached() != pop.Ring.Len() {
			b.Fatal("incomplete tree")
		}
	}
}

func BenchmarkCAMChordLookup(b *testing.B) {
	pop := benchPopulation(b)
	net, err := camchord.New(pop.Ring, pop.Caps)
	if err != nil {
		b.Fatal(err)
	}
	space := pop.Ring.Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Lookup(i%pop.Ring.Len(), space.Reduce(uint64(i)*2654435761))
	}
}

func BenchmarkCAMKoordeLookup(b *testing.B) {
	pop := benchPopulation(b)
	net, err := camkoorde.New(pop.Ring, pop.Caps)
	if err != nil {
		b.Fatal(err)
	}
	space := pop.Ring.Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Lookup(i%pop.Ring.Len(), space.Reduce(uint64(i)*2654435761))
	}
}

// BenchmarkLiveMulticast measures an end-to-end multicast over the dynamic
// runtime (public API) on a 32-member group.
func BenchmarkLiveMulticast(b *testing.B) {
	net := NewNetwork()
	defer net.Close()
	opts := func() Options {
		return Options{Capacity: 5, Stabilize: -1, Fix: -1}
	}
	if _, err := net.Create("m0", opts()); err != nil {
		b.Fatal(err)
	}
	for i := 1; i < 32; i++ {
		if _, err := net.Join(fmt.Sprintf("m%d", i), "m0", opts()); err != nil {
			b.Fatal(err)
		}
		net.Settle(1)
	}
	net.Settle(3)
	src, err := net.Member("m7")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Multicast(payload); err != nil {
			b.Fatal(err)
		}
	}
}
