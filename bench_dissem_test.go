package camcast

// Dissemination throughput benches: the end-to-end data path the zero-copy
// work targets. Each op is one Multicast from a source with capacity =
// fan-out into a settled single-level tree of fan-out receivers, so the
// source's transport pushes fan-out copies of the payload per op —
// b.SetBytes reports that egress volume and `go test -bench` prints MB/s.
// The grid covers both transports (in-process mem, TCP loopback), the
// fan-outs the paper provisions for (2, 8, 16 ≈ c_x ranges of §6), and
// payloads from control-plane-sized to bulk (1KiB, 64KiB, 1MiB).
//
// BENCH_dissem.json records this grid before/after the single-encode blob
// path; scripts/bench_gate.py holds the line in CI. Regenerate with:
//
//	go test -run 'xxx' -bench BenchmarkMulticastThroughput -benchtime 2s .

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

const benchDissemCells = "fanout in {2,8,16} x payload in {1KiB,64KiB,1MiB}"

func benchPayloadBytes(size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(i * 131)
	}
	return p
}

// benchAwaitDeliveries waits for the delivery counter to reach want;
// fan-out RPCs are acked before grandchild spreads finish, so the last
// deliveries of an op can trail the Multicast return slightly.
func benchAwaitDeliveries(b *testing.B, delivered *atomic.Int64, want int64) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d messages", delivered.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func benchDissemOpts(fanout int, delivered *atomic.Int64) Options {
	return Options{
		Capacity:  fanout,
		Stabilize: -1,
		Fix:       -1,
		OnDeliver: func(m Message) { delivered.Add(1) },
	}
}

func benchMulticastMem(b *testing.B, fanout, size int) {
	var delivered atomic.Int64
	n := NewNetwork()
	defer n.Close()
	source, err := n.Create("s", benchDissemOpts(fanout, &delivered))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < fanout; i++ {
		if _, err := n.Join(fmt.Sprintf("m%d", i), "s", benchDissemOpts(fanout, &delivered)); err != nil {
			b.Fatal(err)
		}
		n.Settle(3)
	}
	n.Settle(5)
	payload := benchPayloadBytes(size)
	if _, err := source.Multicast(payload); err != nil {
		b.Fatal(err)
	}
	benchAwaitDeliveries(b, &delivered, int64(fanout+1))
	delivered.Store(0)
	b.SetBytes(int64(size * fanout))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := source.Multicast(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchAwaitDeliveries(b, &delivered, int64(b.N*(fanout+1)))
}

func benchMulticastTCP(b *testing.B, fanout, size int) {
	var delivered atomic.Int64
	var members []*TCPMember
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	for i := 0; i <= fanout; i++ {
		via := ""
		if i > 0 {
			via = members[0].Addr()
		}
		m, err := ListenTCP("127.0.0.1:0", via, benchDissemOpts(fanout, &delivered))
		if err != nil {
			b.Fatal(err)
		}
		members = append(members, m)
		for r := 0; r < 3; r++ {
			for _, mm := range members {
				mm.StabilizeOnce()
			}
		}
	}
	for r := 0; r < 3; r++ {
		for _, m := range members {
			m.StabilizeOnce()
			m.FixAll()
		}
	}
	payload := benchPayloadBytes(size)
	if _, err := members[0].Multicast(payload); err != nil {
		b.Fatal(err)
	}
	benchAwaitDeliveries(b, &delivered, int64(fanout+1))
	delivered.Store(0)
	b.SetBytes(int64(size * fanout))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := members[0].Multicast(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchAwaitDeliveries(b, &delivered, int64(b.N*(fanout+1)))
}

// BenchmarkMulticastThroughput is the headline dissemination grid:
// mem + tcp transports, fan-out {2,8,16}, payload {1KiB,64KiB,1MiB}.
// MB/s is source egress (payload bytes x fan-out per op).
func BenchmarkMulticastThroughput(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{{"1KiB", 1 << 10}, {"64KiB", 1 << 16}, {"1MiB", 1 << 20}}
	for _, fanout := range []int{2, 8, 16} {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("mem/fanout%d/%s", fanout, size.name), func(b *testing.B) {
				benchMulticastMem(b, fanout, size.n)
			})
		}
	}
	if testing.Short() {
		b.Log("skipping TCP loopback cells in -short mode")
		return
	}
	for _, fanout := range []int{2, 8, 16} {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("tcp/fanout%d/%s", fanout, size.name), func(b *testing.B) {
				benchMulticastTCP(b, fanout, size.n)
			})
		}
	}
}
