package camcast

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
)

func quietOpts(col *collector, addr string) Options {
	return Options{
		Protocol:  CAMChord,
		Capacity:  4,
		Stabilize: -1,
		Fix:       -1,
		OnDeliver: col.handler(addr),
	}
}

// buildGroupMembers populates g with n members addressed "<prefix>-<i>",
// bootstrapping through the first.
func buildGroupMembers(t *testing.T, g *Group, col *collector, prefix string, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	addrs[0] = prefix + "-0"
	if _, err := g.Create(addrs[0], quietOpts(col, addrs[0])); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		addrs[i] = fmt.Sprintf("%s-%d", prefix, i)
		if _, err := g.Join(addrs[i], addrs[0], quietOpts(col, addrs[i])); err != nil {
			t.Fatal(err)
		}
		g.Settle(1)
	}
	g.Settle(3)
	return addrs
}

func TestGroupLifecycle(t *testing.T) {
	net := NewNetwork()
	defer net.Close()

	g, err := net.CreateGroup("tenant-a", GroupOptions{Token: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "tenant-a" || !g.Protected() {
		t.Errorf("group = %q protected=%v, want tenant-a protected", g.Name(), g.Protected())
	}
	if g.FlowLabel() == 0 {
		t.Error("named group got the default flow label 0")
	}

	if _, err := net.CreateGroup("tenant-a", GroupOptions{}); !errors.Is(err, ErrGroupExists) {
		t.Errorf("duplicate create error = %v, want ErrGroupExists", err)
	}
	if _, err := net.CreateGroup("default", GroupOptions{}); !errors.Is(err, ErrGroupExists) {
		t.Errorf("creating \"default\" error = %v, want ErrGroupExists", err)
	}
	if _, err := net.CreateGroup("", GroupOptions{}); err == nil {
		t.Error("empty group name accepted")
	}

	if _, err := net.JoinGroup("tenant-a", "wrong"); !errors.Is(err, ErrBadToken) {
		t.Errorf("bad token error = %v, want ErrBadToken", err)
	}
	if _, err := net.JoinGroup("nope", ""); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("unknown group error = %v, want ErrNoSuchGroup", err)
	}
	g2, err := net.JoinGroup("tenant-a", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Error("JoinGroup returned a different handle than CreateGroup")
	}

	col := newCollector()
	addrs := buildGroupMembers(t, g, col, "a", 4)
	info := g.Describe()
	if info.MemberCount != 4 || len(info.Members) != 4 {
		t.Errorf("describe reports %d members (%d listed), want 4", info.MemberCount, len(info.Members))
	}
	if info.Flow != g.FlowLabel() || !info.Protected {
		t.Errorf("describe = %+v, want flow %d protected", info, g.FlowLabel())
	}

	// The network-wide listing shows both groups, summaries only.
	groups := net.Groups()
	if len(groups) != 2 {
		t.Fatalf("Groups() returned %d entries, want 2 (default + tenant-a)", len(groups))
	}
	if groups[0].Name != "default" || groups[1].Name != "tenant-a" {
		t.Errorf("Groups() order = %s, %s; want default, tenant-a", groups[0].Name, groups[1].Name)
	}
	if groups[1].Members != nil {
		t.Error("group listing leaked the member list")
	}

	// Member handles know their group; leave shrinks it.
	m, err := g.Member(addrs[3])
	if err != nil {
		t.Fatal(err)
	}
	if m.Group() != "tenant-a" {
		t.Errorf("member group = %q, want tenant-a", m.Group())
	}
	if err := m.Leave(); err != nil {
		t.Fatal(err)
	}
	if got := g.Describe().MemberCount; got != 3 {
		t.Errorf("after leave member count = %d, want 3", got)
	}
	if net.DefaultGroup().Name() != "default" {
		t.Errorf("default group name = %q", net.DefaultGroup().Name())
	}
}

// TestGroupIsolation pins the core multi-tenancy invariant: groups hosted
// on one Network are fully isolated overlays — even members at the same
// transport address — and a multicast in one group never reaches another.
func TestGroupIsolation(t *testing.T) {
	net := NewNetwork()
	defer net.Close()

	ga, err := net.CreateGroup("iso-a", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := net.CreateGroup("iso-b", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}

	colA, colB := newCollector(), newCollector()
	addrsA := buildGroupMembers(t, ga, colA, "node", 5)
	// Group B reuses the exact same addresses: endpoint identity is
	// (flow label, addr), so this must neither collide nor cross-talk.
	addrsB := buildGroupMembers(t, gb, colB, "node", 5)

	srcA, err := ga.Member(addrsA[1])
	if err != nil {
		t.Fatal(err)
	}
	msgA, err := srcA.MulticastContext(context.Background(), []byte("for A only"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrsA {
		if got := colA.count(addr, msgA); got != 1 {
			t.Errorf("group A member %s delivered %d times, want 1", addr, got)
		}
	}
	for _, addr := range addrsB {
		if got := colB.count(addr, msgA); got != 0 {
			t.Errorf("group B member %s received group A's message %d times", addr, got)
		}
	}

	// Counters are per group: A's multicast left B untouched.
	if snap := gb.CountersSnapshot(); snap.ForwardAcked != 0 {
		t.Errorf("group B recorded %d acked forwards from group A traffic", snap.ForwardAcked)
	}
	if snap := ga.CountersSnapshot(); snap.ForwardAcked == 0 {
		t.Error("group A recorded no acked forwards")
	}

	// The network-wide tally sums the groups.
	total := net.CountersSnapshot()
	sum := ga.CountersSnapshot().ForwardAcked + gb.CountersSnapshot().ForwardAcked
	if total.ForwardAcked != sum {
		t.Errorf("network acked %d != group sum %d", total.ForwardAcked, sum)
	}

	// Network.Neighbors spans groups and tags non-default members.
	var tagged int
	for _, ni := range net.Neighbors() {
		if ni.Group == "iso-a" || ni.Group == "iso-b" {
			tagged++
		}
	}
	if tagged != 10 {
		t.Errorf("aggregate neighbors tagged %d members with group names, want 10", tagged)
	}
}

func TestGroupHTTPControlPlane(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	srv := httptest.NewServer(net.DebugHandler())
	defer srv.Close()

	post := func(path string, form url.Values) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.PostForm(srv.URL+path, form)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Create a protected group.
	resp, _ := post("/debug/camcast/groups", url.Values{"name": {"web"}, "token": {"t0k"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, want 201", resp.StatusCode)
	}
	// Duplicate name conflicts.
	resp, _ = post("/debug/camcast/groups", url.Values{"name": {"web"}})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create status = %d, want 409", resp.StatusCode)
	}

	// Bootstrap a member, then join a second through it.
	resp, _ = post("/debug/camcast/groups/web/join", url.Values{
		"addr": {"w-0"}, "token": {"t0k"}, "capacity": {"4"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("bootstrap join status = %d, want 201", resp.StatusCode)
	}
	resp, _ = post("/debug/camcast/groups/web/join", url.Values{
		"addr": {"w-1"}, "via": {"w-0"}, "token": {"t0k"}, "capacity": {"4"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("join status = %d, want 201", resp.StatusCode)
	}

	// Token gates describe/join/leave.
	resp, _ = get("/debug/camcast/groups/web?token=wrong")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("describe with bad token status = %d, want 403", resp.StatusCode)
	}
	resp, body := get("/debug/camcast/groups/web?token=t0k")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("describe status = %d, want 200", resp.StatusCode)
	}
	var info GroupInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("describe body %q: %v", body, err)
	}
	if info.Name != "web" || info.MemberCount != 2 || !info.Protected {
		t.Errorf("describe = %+v, want web with 2 members, protected", info)
	}

	// Unknown groups and members map to 404.
	resp, _ = get("/debug/camcast/groups/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown group status = %d, want 404", resp.StatusCode)
	}
	resp, _ = post("/debug/camcast/groups/web/leave", url.Values{"addr": {"ghost"}, "token": {"t0k"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("leave of unknown member status = %d, want 404", resp.StatusCode)
	}

	// Leave through the control plane shrinks the group.
	resp, _ = post("/debug/camcast/groups/web/leave", url.Values{"addr": {"w-1"}, "token": {"t0k"}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("leave status = %d, want 200", resp.StatusCode)
	}

	// Listing is open and shows summaries for default + web.
	resp, body = get("/debug/camcast/groups")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d, want 200", resp.StatusCode)
	}
	var list []GroupInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list body %q: %v", body, err)
	}
	if len(list) != 2 || list[1].Name != "web" || list[1].MemberCount != 1 {
		t.Errorf("list = %+v, want [default, web(1 member)]", list)
	}

	// The pre-existing debug surface still answers underneath the mux.
	resp, _ = get("/debug/camcast/stats")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats status = %d, want 200", resp.StatusCode)
	}
}

// TestGroupMulticastConcurrent exercises several groups multicasting at
// once on one Network, checking deliveries stay within their group.
func TestGroupMulticastConcurrent(t *testing.T) {
	net := NewNetwork()
	defer net.Close()

	const groups, members, msgs = 4, 4, 8
	type tenant struct {
		g     *Group
		col   *collector
		addrs []string
	}
	tenants := make([]tenant, groups)
	for i := range tenants {
		g, err := net.CreateGroup(fmt.Sprintf("tenant-%d", i), GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		col := newCollector()
		tenants[i] = tenant{g: g, col: col, addrs: buildGroupMembers(t, g, col, fmt.Sprintf("t%d", i), members)}
	}

	var wg sync.WaitGroup
	ids := make([][]string, groups)
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, err := tenants[i].g.Member(tenants[i].addrs[0])
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < msgs; k++ {
				id, err := src.MulticastContext(context.Background(), []byte(fmt.Sprintf("g%d-m%d", i, k)))
				if err != nil {
					t.Error(err)
					return
				}
				ids[i] = append(ids[i], id)
			}
		}(i)
	}
	wg.Wait()

	for i, tn := range tenants {
		for _, id := range ids[i] {
			for _, addr := range tn.addrs {
				if got := tn.col.count(addr, id); got != 1 {
					t.Errorf("tenant %d member %s got message %s %d times, want 1", i, addr, id, got)
				}
			}
		}
		// No other tenant's collector saw any of tenant i's messages.
		for j, other := range tenants {
			if j == i {
				continue
			}
			for _, id := range ids[i] {
				for _, addr := range other.addrs {
					if got := other.col.count(addr, id); got != 0 {
						t.Errorf("tenant %d message %s leaked to tenant %d member %s", i, id, j, addr)
					}
				}
			}
		}
	}
}
