package camcast_test

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"camcast"
)

// Example builds a small heterogeneous CAM-Chord group, multicasts from one
// member, and prints who received the message.
func Example() {
	net := camcast.NewNetwork()
	defer net.Close()

	var (
		mu       sync.Mutex
		received []string
	)
	opts := func(who string, capacity int) camcast.Options {
		return camcast.Options{
			Protocol:  camcast.CAMChord,
			Capacity:  capacity,
			Stabilize: -1, // maintenance driven explicitly via Settle
			Fix:       -1,
			OnDeliver: func(m camcast.Message) {
				mu.Lock()
				defer mu.Unlock()
				received = append(received, who)
			},
		}
	}

	// The first member bootstraps the group; others join through it.
	if _, err := net.Create("server", opts("server", 6)); err != nil {
		fmt.Println("create:", err)
		return
	}
	for _, member := range []string{"laptop", "phone", "tablet"} {
		if _, err := net.Join(member, "server", opts(member, 2)); err != nil {
			fmt.Println("join:", err)
			return
		}
		net.Settle(1)
	}
	net.Settle(3)

	sender, err := net.Member("phone")
	if err != nil {
		fmt.Println("member:", err)
		return
	}
	if _, err := sender.MulticastContext(context.Background(), []byte("hello group")); err != nil {
		fmt.Println("multicast:", err)
		return
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Strings(received)
	fmt.Println(received)
	// Output: [laptop phone server tablet]
}

// ExampleNetwork_CreateGroup runs two tenants side by side on one Network.
// Each group is its own overlay: a multicast in one never reaches the
// other, even though both carry a member named "node".
func ExampleNetwork_CreateGroup() {
	net := camcast.NewNetwork()
	defer net.Close()

	var (
		mu   sync.Mutex
		seen = map[string]int{}
	)
	build := func(g *camcast.Group) {
		opts := func(tenant string) camcast.Options {
			return camcast.Options{
				Protocol:  camcast.CAMChord,
				Capacity:  4,
				Stabilize: -1,
				Fix:       -1,
				OnDeliver: func(camcast.Message) {
					mu.Lock()
					seen[tenant]++
					mu.Unlock()
				},
			}
		}
		if _, err := g.Create("node", opts(g.Name())); err != nil {
			fmt.Println("create:", err)
			return
		}
		if _, err := g.Join("node-2", "node", opts(g.Name())); err != nil {
			fmt.Println("join:", err)
			return
		}
		g.Settle(3)
	}

	alpha, err := net.CreateGroup("alpha", camcast.GroupOptions{})
	if err != nil {
		fmt.Println("group:", err)
		return
	}
	beta, err := net.CreateGroup("beta", camcast.GroupOptions{Token: "s3cret"})
	if err != nil {
		fmt.Println("group:", err)
		return
	}
	build(alpha)
	build(beta)

	// Re-attaching to a protected group needs its token.
	if _, err := net.JoinGroup("beta", "wrong"); err != nil {
		fmt.Println("join beta:", err)
	}

	sender, err := alpha.Member("node")
	if err != nil {
		fmt.Println("member:", err)
		return
	}
	if _, err := sender.MulticastContext(context.Background(), []byte("tenants stay apart")); err != nil {
		fmt.Println("multicast:", err)
		return
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("alpha=%d beta=%d\n", seen["alpha"], seen["beta"])
	// Output:
	// join beta: camcast: group token mismatch: beta
	// alpha=2 beta=0
}
