package camcast_test

import (
	"fmt"
	"sort"
	"sync"

	"camcast"
)

// Example builds a small heterogeneous CAM-Chord group, multicasts from one
// member, and prints who received the message.
func Example() {
	net := camcast.NewNetwork()
	defer net.Close()

	var (
		mu       sync.Mutex
		received []string
	)
	opts := func(who string, capacity int) camcast.Options {
		return camcast.Options{
			Protocol:  camcast.CAMChord,
			Capacity:  capacity,
			Stabilize: -1, // maintenance driven explicitly via Settle
			Fix:       -1,
			OnDeliver: func(m camcast.Message) {
				mu.Lock()
				defer mu.Unlock()
				received = append(received, who)
			},
		}
	}

	// The first member bootstraps the group; others join through it.
	if _, err := net.Create("server", opts("server", 6)); err != nil {
		fmt.Println("create:", err)
		return
	}
	for _, member := range []string{"laptop", "phone", "tablet"} {
		if _, err := net.Join(member, "server", opts(member, 2)); err != nil {
			fmt.Println("join:", err)
			return
		}
		net.Settle(1)
	}
	net.Settle(3)

	sender, err := net.Member("phone")
	if err != nil {
		fmt.Println("member:", err)
		return
	}
	if _, err := sender.Multicast([]byte("hello group")); err != nil {
		fmt.Println("multicast:", err)
		return
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Strings(received)
	fmt.Println(received)
	// Output: [laptop phone server tablet]
}
