module camcast

go 1.22
